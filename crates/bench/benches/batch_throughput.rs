//! Service-level baseline: problems/sec for a 100-problem mixed batch on
//! the engine, cold (fresh engine, empty caches) vs. warm (same engine,
//! memo cache and worker arenas populated by a previous run).
//!
//! The warm numbers should sit far above the cold ones — a warm repeat is
//! answered entirely from the verdict memo cache — and future PRs that
//! touch the engine hot path have this as their reference.
//!
//! The run also measures the observability layer: the same cold batch
//! with noop recorders (the production default) against a fully
//! instrumented engine (an engine-level trace sink receiving every
//! event, plus `slow_solve_ms: 0` so every solve's trace is captured and
//! ring-buffered). The comparison lands in `BENCH_obs.json` at the
//! workspace root; the noop path's budget against the
//! pre-instrumentation seed is <5%, and its cold problems/sec remains
//! directly comparable with this bench's history from before the obs
//! layer existed.

use criterion::{criterion_group, criterion_main, Criterion};
use engine::{Engine, EngineConfig, MemorySink, Request};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const DTD: &str = "<!ELEMENT r (a*, b*)> <!ELEMENT a (b?)> <!ELEMENT b EMPTY>";

/// A 100-problem batch mixing every decision op, mostly distinct problems
/// (the label grid yields a few intra-batch duplicates, as real request
/// streams do).
fn batch_requests() -> Vec<Request> {
    let labels = ["a", "b", "c", "d", "e"];
    let mut lines = vec![format!(r#"{{"op":"dtd","name":"d","source":"{DTD}"}}"#)];
    for i in 0..100 {
        // Decorrelated from the `i % 5` op selector so the 100 problems
        // are (almost all) structurally distinct.
        let l = labels[(i / 5) % labels.len()];
        let m = labels[(i / 25) % labels.len()];
        let line = match i % 5 {
            0 => format!(r#"{{"op":"contains","lhs":"{l}/{m}","rhs":"{l}/*"}}"#),
            1 => format!(r#"{{"op":"overlap","lhs":"child::{l}[child::{m}]","rhs":"child::{m}"}}"#),
            2 => format!(r#"{{"op":"sat","query":"{l}//{m}","type":"d"}}"#),
            3 => format!(r#"{{"op":"equiv","lhs":"{l}/{m}","rhs":"{l}/{m}[self::{m}]"}}"#),
            _ => format!(r#"{{"op":"empty","query":"child::{l} ∩ child::{m}"}}"#),
        };
        lines.push(line);
    }
    lines
        .iter()
        .map(|l| Request::parse(l).expect("bench request parses"))
        .collect()
}

fn engine() -> Engine {
    Engine::with_config(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    })
}

fn bench_batch_throughput(c: &mut Criterion) {
    let requests = batch_requests();

    // One instrumented cold/warm pair outside the timing loops, for the
    // problems/sec + cache-hit report.
    let mut probe = engine();
    let cold_started = Instant::now();
    let cold = probe.run_batch(&requests);
    let cold_elapsed = cold_started.elapsed();
    let warm_started = Instant::now();
    let warm = probe.run_batch(&requests);
    let warm_elapsed = warm_started.elapsed();
    assert_eq!(cold.stats.errors, 0);
    assert_eq!(
        warm.stats.cache_hits, warm.stats.problems,
        "warm run must be fully cached"
    );
    println!(
        "batch-throughput: cold {:>8.1} problems/sec ({} unique of {}, {} cache hits)",
        cold.stats.problems_per_sec(),
        cold.stats.unique_problems,
        cold.stats.problems,
        cold.stats.cache_hits,
    );
    println!(
        "batch-throughput: warm {:>8.1} problems/sec (all {} from memo cache), speedup {:.1}x",
        warm.stats.problems_per_sec(),
        warm.stats.cache_hits,
        cold_elapsed.as_secs_f64() / warm_elapsed.as_secs_f64().max(1e-9),
    );

    let mut g = c.benchmark_group("batch-throughput");
    g.sample_size(10);
    g.bench_function("cold/100-problems", |b| {
        b.iter(|| {
            let mut e = engine();
            let out = e.run_batch(black_box(&requests));
            assert_eq!(out.stats.errors, 0);
            out.stats.problems
        });
    });
    let mut warm_engine = engine();
    let _ = warm_engine.run_batch(&requests);
    g.bench_function("warm/100-problems", |b| {
        b.iter(|| {
            let out = warm_engine.run_batch(black_box(&requests));
            assert_eq!(out.stats.cache_hits, out.stats.problems);
            out.stats.problems
        });
    });
    g.finish();

    obs_overhead(&requests);
}

/// One timed cold batch under the given config; returns elapsed ms.
fn timed_cold_batch(requests: &[Request], instrumented: bool) -> f64 {
    let mut e = if instrumented {
        Engine::with_config(EngineConfig {
            threads: 4,
            trace_sink: Some(Arc::new(MemorySink::new())),
            slow_solve_ms: Some(0),
            ..EngineConfig::default()
        })
    } else {
        engine()
    };
    let started = Instant::now();
    let out = e.run_batch(black_box(requests));
    assert_eq!(out.stats.errors, 0);
    started.elapsed().as_secs_f64() * 1000.0
}

/// Instrumented-vs-noop-recorder comparison on the cold batch, written to
/// `BENCH_obs.json`. "Noop" is the default engine (every solve runs with
/// `Recorder::noop()`); "instrumented" tees every event of every solve
/// into an engine-level memory sink *and* captures each solve's full
/// trace for the slow-solve ring (`slow_solve_ms: 0`) — the worst
/// realistic observability cost.
fn obs_overhead(requests: &[Request]) {
    let samples: usize = std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let min_of = |instrumented: bool| {
        (0..samples)
            .map(|_| timed_cold_batch(requests, instrumented))
            .fold(f64::INFINITY, f64::min)
    };
    // Interleave-free but warmed: one throwaway run each before timing.
    let _ = timed_cold_batch(requests, false);
    let noop_ms = min_of(false);
    let _ = timed_cold_batch(requests, true);
    let instrumented_ms = min_of(true);
    let overhead_pct = (instrumented_ms - noop_ms) / noop_ms * 100.0;
    let problems = 100.0;
    let round3 = |v: f64| (v * 1000.0).round() / 1000.0;
    println!(
        "obs-overhead: noop {noop_ms:.1} ms, instrumented {instrumented_ms:.1} ms ({overhead_pct:+.2}% with full trace + slow capture, {samples} samples)"
    );
    let json = format!(
        concat!(
            r#"{{"bench":"obs_overhead","samples":{},"problems":100,"noop_budget_pct":5,"#,
            r#""noop":{{"min_ms":{},"problems_per_sec":{}}},"#,
            r#""instrumented":{{"min_ms":{},"problems_per_sec":{}}},"#,
            r#""instrumented_overhead_pct":{}}}"#,
        ),
        samples,
        round3(noop_ms),
        round3(problems / noop_ms * 1000.0),
        round3(instrumented_ms),
        round3(problems / instrumented_ms * 1000.0),
        round3(overhead_pct),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(path, json + "\n").expect("write BENCH_obs.json");
    println!("obs-overhead: wrote {path}");
}

criterion_group!(benches, bench_batch_throughput);
criterion_main!(benches);

//! Multi-backend solving strategies: dual cross-checking and portfolio
//! racing.
//!
//! Both modes run several backends over the same problem on worker
//! threads. They differ in what they do with the results:
//!
//! * [`solve_dual`] runs the symbolic and explicit backends to
//!   *completion* and compares their verdicts — a cross-validation mode
//!   that turns an implementation bug into a loud
//!   [`SolveError::Disagreement`] instead of a silent wrong answer.
//! * [`solve_portfolio`] *races* every feasible backend under one shared
//!   deadline and returns the first verdict. The moment a racer finishes,
//!   the shared [`CancelToken`] in the racers' [`Limits`] flips and the
//!   losers abort at their next budget poll (each `Upd` step, each
//!   64-type status block, each enumeration mask, and between the
//!   symbolic backend's relational-product clauses), so the race costs
//!   one backend's wall-clock time plus a poll interval — not the sum.
//!
//! Models hold `Rc` trees and cannot cross threads, so racers ship
//! satisfying models as thread-safe [`BinaryTree`]s and the coordinator
//! rebuilds the unranked [`Model`] on the calling thread.
//!
//! The portfolio quietly degrades rather than erroring on gates: an
//! oversized lean drops the enumerating racers (leaving a symbolic-only
//! "race"), and a racer that dies on a budget it alone exhausted simply
//! never claims the win. Only when *no* racer completes does the
//! coordinator report failure — the symbolic backend's error, since that
//! racer always runs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use ftree::BinaryTree;
use mulogic::{Formula, Logic};
use obs::{FieldValue, Recorder};

use crate::kernel::{enumeration_feasible, feasible_traced, SolveError};
use crate::limits::{CancelToken, Limits};
use crate::outcome::{Model, Outcome, Solved, Stats, Telemetry};
use crate::prepare::Prepared;
use crate::symbolic::SymbolicOptions;

/// Backend names in racer-index order; indices double as claim values.
const RACERS: [&str; 3] = ["symbolic", "explicit", "witnessed"];

/// Sentinel claim value meaning "no racer has finished yet".
const OPEN: usize = usize::MAX;

/// A solve result made thread-safe for shipping back to the coordinator:
/// the satisfying model (if any) as owned binary trees, plus the stats.
struct Shipped {
    sat_roots: Option<Vec<BinaryTree>>,
    stats: Stats,
}

fn ship(solved: Solved) -> Shipped {
    let sat_roots = solved
        .outcome
        .model()
        .map(|m| m.roots().iter().map(BinaryTree::from_unranked).collect());
    Shipped {
        sat_roots,
        stats: solved.stats,
    }
}

fn unship(shipped: Shipped) -> Solved {
    let outcome = match shipped.sat_roots {
        Some(roots) => Outcome::Satisfiable(Model::from_roots(
            roots.iter().map(BinaryTree::to_unranked).collect(),
        )),
        None => Outcome::Unsatisfiable,
    };
    Solved {
        outcome,
        stats: shipped.stats,
    }
}

/// Post-processes one racer's result: a completed racer tries to claim
/// the race and, on winning, cancels everyone else.
fn finish(
    idx: usize,
    result: Result<Solved, SolveError>,
    claim: &AtomicUsize,
    token: &CancelToken,
) -> Result<Shipped, SolveError> {
    let solved = result?;
    if claim
        .compare_exchange(OPEN, idx, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok()
    {
        token.cancel();
    }
    Ok(ship(solved))
}

/// Wraps a winning racer's result in the portfolio envelope: the winner
/// event on the recorder, [`Telemetry::Portfolio`] naming winner and
/// field, and the race's own wall-clock duration.
fn crown(
    solved: Solved,
    winner: &'static str,
    raced: Vec<&'static str>,
    t0: Instant,
    rec: &Recorder,
) -> Solved {
    rec.event(
        "winner",
        &[
            ("backend", FieldValue::Str(winner)),
            ("raced", FieldValue::U64(raced.len() as u64)),
        ],
    );
    Solved {
        outcome: solved.outcome,
        stats: Stats {
            lean_size: solved.stats.lean_size,
            closure_size: solved.stats.closure_size,
            iterations: solved.stats.iterations,
            duration: t0.elapsed(),
            telemetry: Telemetry::Portfolio {
                winner,
                raced,
                inner: Box::new(solved.stats.telemetry),
            },
        },
    }
}

/// Races every feasible backend and returns the first verdict.
///
/// The symbolic backend always races (on the calling thread, reusing the
/// caller's BDD manager); the explicit and witnessed backends join only
/// when their lean fits the enumeration budget. The winner's outcome and
/// stats are returned wrapped in [`Telemetry::Portfolio`], which records
/// who won and who raced.
///
/// Concurrency adapts to the machine: with at least two hardware threads
/// the racers genuinely run in parallel under the shared cancel token; on
/// a single-threaded box a concurrent race would only time-slice the
/// winner slower, so the backends are attempted *in order* with early
/// exit instead — the same rescue semantics, minus the parallelism.
pub(crate) fn solve_portfolio(
    lg: &mut Logic,
    goal: Formula,
    opts: &SymbolicOptions,
    mgr: &mut bdd::Bdd,
    limits: &Limits,
    rec: &Recorder,
) -> Result<Solved, SolveError> {
    let slots = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    if slots >= 2 {
        race_concurrently(lg, goal, opts, mgr, limits, rec)
    } else {
        attempt_in_order(lg, goal, opts, mgr, limits, rec)
    }
}

/// The single-core portfolio: ordered attempts with early exit.
///
/// The symbolic backend goes first and, when it completes, is the whole
/// race — no gate is computed and no arena is cloned, so the fast path
/// costs the symbolic solve plus an event. Only when it fails do the
/// feasible enumerating backends take their turn at the rescue.
fn attempt_in_order(
    lg: &mut Logic,
    goal: Formula,
    opts: &SymbolicOptions,
    mgr: &mut bdd::Bdd,
    limits: &Limits,
    rec: &Recorder,
) -> Result<Solved, SolveError> {
    let t0 = Instant::now();
    let mut raced = vec!["symbolic"];
    let symbolic_err = match crate::solve_symbolic_traced(lg, goal, opts, mgr, limits, rec) {
        Ok(s) => return Ok(crown(s, "symbolic", raced, t0, rec)),
        Err(e) => e,
    };
    let mut backup_lg = lg.clone();
    let prep = Prepared::new(&mut backup_lg, goal);
    if enumeration_feasible(prep.lean.diam_entries().count(), limits).is_ok() {
        raced.push("explicit");
        if let Ok(s) = crate::explicit::solve_prepared(&mut backup_lg, prep, limits, rec) {
            return Ok(crown(s, "explicit", raced, t0, rec));
        }
        raced.push("witnessed");
        if let Ok(s) = crate::witnessed::solve_witnessed_bounded(lg, goal, limits, rec) {
            return Ok(crown(s, "witnessed", raced, t0, rec));
        }
    }
    // Every attempt failed; the symbolic backend's error is the one to
    // report (it always ran, and its budgets are the authoritative ones).
    Err(symbolic_err)
}

/// The multi-core portfolio: worker-thread racers under one shared
/// cancel token, first completion wins and cancels the rest.
fn race_concurrently(
    lg: &mut Logic,
    goal: Formula,
    opts: &SymbolicOptions,
    mgr: &mut bdd::Bdd,
    limits: &Limits,
    rec: &Recorder,
) -> Result<Solved, SolveError> {
    let t0 = Instant::now();
    // Each enumerating racer gets its own arena clone so the backends can
    // run on separate threads; formula ids stay valid across the clone.
    let mut explicit_lg = lg.clone();
    let prep = Prepared::new(&mut explicit_lg, goal);
    // Gate the enumerating racers silently: an oversized lean shrinks the
    // field instead of failing the solve (the symbolic racer still runs).
    // The witnessed backend's own (unplunged) lean is two diamonds
    // smaller than the prepared one, so the shared gate errs conservative.
    let feasible = enumeration_feasible(prep.lean.diam_entries().count(), limits).is_ok();
    let explicit_ok = feasible;
    let witnessed_ok = feasible;
    let mut witnessed_lg = witnessed_ok.then(|| lg.clone());

    let token = CancelToken::armed();
    let race_limits = Limits {
        cancel: token.clone(),
        ..limits.clone()
    };
    let claim = AtomicUsize::new(OPEN);

    let (symbolic_r, explicit_r, witnessed_r) = std::thread::scope(|scope| {
        let explicit_handle = explicit_ok.then(|| {
            let racer_limits = race_limits.clone();
            // All racers share the recorder (same solve id and clock);
            // their events interleave in sink order.
            let racer_rec = rec.clone();
            let (claim, token) = (&claim, &token);
            scope.spawn(move || {
                let r = crate::explicit::solve_prepared(
                    &mut explicit_lg,
                    prep,
                    &racer_limits,
                    &racer_rec,
                );
                finish(1, r, claim, token)
            })
        });
        let witnessed_handle = witnessed_ok.then(|| {
            let racer_limits = race_limits.clone();
            let racer_rec = rec.clone();
            let (claim, token) = (&claim, &token);
            let mut racer_lg = witnessed_lg.take().expect("cloned when feasible");
            scope.spawn(move || {
                let r = crate::witnessed::solve_witnessed_bounded(
                    &mut racer_lg,
                    goal,
                    &racer_limits,
                    &racer_rec,
                );
                finish(2, r, claim, token)
            })
        });
        let symbolic_r = finish(
            0,
            crate::solve_symbolic_traced(lg, goal, opts, mgr, &race_limits, rec),
            &claim,
            &token,
        );
        (
            symbolic_r,
            explicit_handle.map(|h| h.join().expect("explicit racer panicked")),
            witnessed_handle.map(|h| h.join().expect("witnessed racer panicked")),
        )
    });

    let mut results = [Some(symbolic_r), explicit_r, witnessed_r];
    let winner_idx = claim.load(Ordering::SeqCst);
    if winner_idx == OPEN {
        // Nobody completed. The symbolic racer always runs and a
        // completed symbolic racer always claims an open race, so its
        // slot necessarily holds the error to report.
        return Err(match results[0].take() {
            Some(Err(e)) => e,
            _ => unreachable!("symbolic completion claims an open race"),
        });
    }
    let Some(Ok(shipped)) = results[winner_idx].take() else {
        unreachable!("the claimed winner completed")
    };
    let raced: Vec<&'static str> = [true, explicit_ok, witnessed_ok]
        .iter()
        .zip(RACERS)
        .filter_map(|(&ran, name)| ran.then_some(name))
        .collect();
    Ok(crown(unship(shipped), RACERS[winner_idx], raced, t0, rec))
}

/// Runs the symbolic and explicit backends to completion on separate
/// threads and cross-checks their verdicts.
///
/// Unlike the portfolio, neither side is cancelled: the point is the
/// comparison, so both verdicts are needed. A verdict mismatch is
/// reported as [`SolveError::Disagreement`].
pub(crate) fn solve_dual(
    lg: &mut Logic,
    goal: Formula,
    opts: &SymbolicOptions,
    mgr: &mut bdd::Bdd,
    limits: &Limits,
    rec: &Recorder,
) -> Result<Solved, SolveError> {
    let t0 = Instant::now();
    // The explicit run gets its own arena so the two backends can run on
    // separate threads; formula ids stay valid across the clone.
    let mut explicit_lg = lg.clone();
    let prep = Prepared::new(&mut explicit_lg, goal);
    feasible_traced(prep.lean.diam_entries().count(), limits, rec)?;
    let explicit_limits = limits.clone();
    // Both halves share the recorder (same solve id and clock); their
    // events interleave in sink order.
    let explicit_rec = rec.clone();
    let (symbolic, explicit_result) = std::thread::scope(|scope| {
        // Models hold `Rc` trees and cannot cross threads, so the explicit
        // side ships only its verdict and stats back; its model is
        // redundant with the symbolic one anyway.
        let handle = scope.spawn(move || {
            crate::explicit::solve_prepared(&mut explicit_lg, prep, &explicit_limits, &explicit_rec)
                .map(|solved| (solved.outcome.is_satisfiable(), solved.stats))
        });
        let symbolic = crate::solve_symbolic_traced(lg, goal, opts, mgr, limits, rec);
        (symbolic, handle.join().expect("explicit backend panicked"))
    });
    let symbolic = symbolic?;
    let (explicit_sat, explicit) = explicit_result?;
    if symbolic.outcome.is_satisfiable() != explicit_sat {
        return Err(SolveError::Disagreement {
            symbolic_sat: symbolic.outcome.is_satisfiable(),
            explicit_sat,
            formula: lg.display(goal).to_string(),
        });
    }
    Ok(Solved {
        outcome: symbolic.outcome,
        stats: Stats {
            lean_size: symbolic.stats.lean_size,
            closure_size: symbolic.stats.closure_size,
            // The driving backend's count; the explicit side's is reported
            // separately in the telemetry rather than summed into one
            // meaningless total.
            iterations: symbolic.stats.iterations,
            duration: t0.elapsed(),
            telemetry: Telemetry::Dual {
                symbolic_iterations: symbolic.stats.iterations,
                explicit_iterations: explicit.iterations,
                symbolic: Box::new(symbolic.stats.telemetry),
                explicit: Box::new(explicit.telemetry),
            },
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mulogic::ModelChecker;

    /// The concurrent race path, invoked directly so it is exercised even
    /// on single-core machines (where `solve_portfolio` would pick the
    /// ordered-attempt path).
    fn race(input: &str) -> (Logic, Formula, Result<Solved, SolveError>) {
        let mut lg = Logic::new();
        let goal = lg.parse(input).expect("test formula parses");
        let mut mgr = bdd::Bdd::new();
        let r = race_concurrently(
            &mut lg,
            goal,
            &SymbolicOptions::default(),
            &mut mgr,
            &Limits::none(),
            &Recorder::noop(),
        );
        (lg, goal, r)
    }

    #[test]
    fn concurrent_race_verdicts_and_models_check_out() {
        for (input, sat) in [
            ("a & <1>(b & <2>c)", true),
            ("a & ~a", false),
            ("a & <1>b & <1>~b", false),
        ] {
            let (lg, goal, r) = race(input);
            let solved = r.expect("unbounded race completes");
            assert_eq!(solved.outcome.is_satisfiable(), sat, "{input}");
            if let Some(m) = solved.outcome.model() {
                let mc = ModelChecker::new_row(m.roots());
                assert!(!mc.eval(&lg, goal).is_empty(), "{input}: model fails");
            }
            let Telemetry::Portfolio {
                winner,
                raced,
                inner,
            } = &solved.stats.telemetry
            else {
                panic!("{input}: wrong telemetry {:?}", solved.stats.telemetry);
            };
            assert!(raced.contains(winner), "{input}: {winner} not in {raced:?}");
            assert_eq!(raced[0], "symbolic");
            assert_eq!(inner.backend_name(), *winner, "{input}");
        }
    }

    #[test]
    fn concurrent_race_cancels_losers_promptly() {
        // A race on a lean large enough that the enumerating racers take
        // far longer than the symbolic one: the scope join (and thus this
        // test) only returns quickly if the losers honor the cancel token.
        let input = "a & <1>(b | <2>(c & <1>(d | <2>(e & <1>f)))) & <2>g";
        let t0 = Instant::now();
        let (_, _, r) = race(input);
        let solved = r.expect("race completes");
        let Telemetry::Portfolio { raced, .. } = &solved.stats.telemetry else {
            panic!("wrong telemetry");
        };
        assert!(raced.len() > 1, "expected enumerating racers in {raced:?}");
        // Generous bound: the losers' exponential run would take far
        // longer; cancellation keeps the whole race near the winner's
        // time even with the enumerators mid-build.
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(30),
            "race took {:?}",
            t0.elapsed()
        );
    }
}

//! Sampling strategies: `select` from a slice and random `Index`es.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An opaque random index, projected onto a collection with
/// [`Index::index`]. Obtain one with `any::<prop::sample::Index>()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    pub(crate) fn new(raw: u64) -> Index {
        Index(raw)
    }

    /// Projects the index onto a collection of length `len` (`len > 0`).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        (self.0 % len as u64) as usize
    }
}

/// The strategy returned by [`select`].
#[derive(Clone)]
pub struct Select<T: Clone> {
    items: Vec<T>,
}

/// Uniformly selects one of the given items.
pub fn select<T: Clone + 'static>(items: &[T]) -> Select<T> {
    assert!(!items.is_empty(), "select from an empty slice");
    Select {
        items: items.to_vec(),
    }
}

impl<T: Clone + 'static> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len() as u64) as usize].clone()
    }
}

//! DTD content models (regular expressions over element names).

use std::fmt;

use ftree::Label;

/// A content model: a regular expression over child element names.
///
/// `#PCDATA` is treated as the empty sequence — the logic abstracts from
/// text nodes, exactly as in the paper's data model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Content {
    /// `EMPTY` — no children.
    Empty,
    /// `(#PCDATA)` — text only; no element children.
    PCData,
    /// `ANY` — any sequence of declared elements.
    Any,
    /// A child element.
    Name(Label),
    /// `(r1, r2)` — sequence.
    Seq(Box<Content>, Box<Content>),
    /// `(r1 | r2)` — choice.
    Choice(Box<Content>, Box<Content>),
    /// `r?`
    Opt(Box<Content>),
    /// `r*`
    Star(Box<Content>),
    /// `r+`
    Plus(Box<Content>),
}

impl Content {
    /// Whether the model accepts the empty sequence of children.
    pub fn nullable(&self) -> bool {
        match self {
            Content::Empty | Content::PCData | Content::Any => true,
            Content::Name(_) => false,
            Content::Seq(a, b) => a.nullable() && b.nullable(),
            Content::Choice(a, b) => a.nullable() || b.nullable(),
            Content::Opt(_) | Content::Star(_) => true,
            Content::Plus(r) => r.nullable(),
        }
    }

    /// Brzozowski derivative with respect to a child label, or `None` when
    /// no continuation exists. `Any` derives to itself for any label.
    pub fn derive(&self, l: Label) -> Option<Content> {
        match self {
            Content::Empty | Content::PCData => None,
            Content::Any => Some(Content::Any),
            Content::Name(n) => {
                if *n == l {
                    Some(Content::PCData) // ε
                } else {
                    None
                }
            }
            Content::Seq(a, b) => {
                let left = a.derive(l).map(|da| Content::Seq(Box::new(da), b.clone()));
                let right = if a.nullable() { b.derive(l) } else { None };
                match (left, right) {
                    (Some(x), Some(y)) => Some(Content::Choice(Box::new(x), Box::new(y))),
                    (Some(x), None) | (None, Some(x)) => Some(x),
                    (None, None) => None,
                }
            }
            Content::Choice(a, b) => match (a.derive(l), b.derive(l)) {
                (Some(x), Some(y)) => Some(Content::Choice(Box::new(x), Box::new(y))),
                (Some(x), None) | (None, Some(x)) => Some(x),
                (None, None) => None,
            },
            Content::Opt(r) => r.derive(l),
            Content::Star(r) => r
                .derive(l)
                .map(|dr| Content::Seq(Box::new(dr), Box::new(Content::Star(r.clone())))),
            Content::Plus(r) => r
                .derive(l)
                .map(|dr| Content::Seq(Box::new(dr), Box::new(Content::Star(r.clone())))),
        }
    }

    /// Whether the model accepts a sequence of child labels.
    pub fn matches(&self, labels: &[Label]) -> bool {
        let mut cur = self.clone();
        for &l in labels {
            match cur.derive(l) {
                Some(next) => cur = next,
                None => return false,
            }
        }
        cur.nullable()
    }

    /// The labels mentioned by the model.
    pub fn mentioned(&self, out: &mut Vec<Label>) {
        match self {
            Content::Name(l) if !out.contains(l) => {
                out.push(*l);
            }
            Content::Seq(a, b) | Content::Choice(a, b) => {
                a.mentioned(out);
                b.mentioned(out);
            }
            Content::Opt(r) | Content::Star(r) | Content::Plus(r) => r.mentioned(out),
            _ => {}
        }
    }
}

impl fmt::Display for Content {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Content::Empty => f.write_str("EMPTY"),
            Content::PCData => f.write_str("(#PCDATA)"),
            Content::Any => f.write_str("ANY"),
            Content::Name(l) => write!(f, "{l}"),
            Content::Seq(a, b) => write!(f, "({a}, {b})"),
            Content::Choice(a, b) => write!(f, "({a} | {b})"),
            Content::Opt(r) => write!(f, "{r}?"),
            Content::Star(r) => write!(f, "{r}*"),
            Content::Plus(r) => write!(f, "{r}+"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    fn seq(a: Content, b: Content) -> Content {
        Content::Seq(Box::new(a), Box::new(b))
    }

    fn alt(a: Content, b: Content) -> Content {
        Content::Choice(Box::new(a), Box::new(b))
    }

    #[test]
    fn nullable_cases() {
        assert!(Content::Empty.nullable());
        assert!(Content::PCData.nullable());
        assert!(!Content::Name(l("a")).nullable());
        assert!(Content::Star(Box::new(Content::Name(l("a")))).nullable());
        assert!(!Content::Plus(Box::new(Content::Name(l("a")))).nullable());
        assert!(Content::Opt(Box::new(Content::Name(l("a")))).nullable());
    }

    #[test]
    fn sequence_matching() {
        // (a, b?, c*)
        let m = seq(
            Content::Name(l("a")),
            seq(
                Content::Opt(Box::new(Content::Name(l("b")))),
                Content::Star(Box::new(Content::Name(l("c")))),
            ),
        );
        assert!(m.matches(&[l("a")]));
        assert!(m.matches(&[l("a"), l("b")]));
        assert!(m.matches(&[l("a"), l("c"), l("c")]));
        assert!(m.matches(&[l("a"), l("b"), l("c")]));
        assert!(!m.matches(&[]));
        assert!(!m.matches(&[l("b")]));
        assert!(!m.matches(&[l("a"), l("b"), l("b")]));
        assert!(!m.matches(&[l("a"), l("c"), l("b")]));
    }

    #[test]
    fn choice_and_plus() {
        // (a | b)+
        let m = Content::Plus(Box::new(alt(Content::Name(l("a")), Content::Name(l("b")))));
        assert!(m.matches(&[l("a")]));
        assert!(m.matches(&[l("b"), l("a"), l("b")]));
        assert!(!m.matches(&[]));
        assert!(!m.matches(&[l("c")]));
    }

    #[test]
    fn any_matches_everything() {
        assert!(Content::Any.matches(&[]));
        assert!(Content::Any.matches(&[l("x"), l("y")]));
    }

    #[test]
    fn empty_and_pcdata_match_only_nothing() {
        assert!(Content::Empty.matches(&[]));
        assert!(!Content::Empty.matches(&[l("a")]));
        assert!(Content::PCData.matches(&[]));
        assert!(!Content::PCData.matches(&[l("a")]));
    }
}

//! **xsat** — efficient static analysis of XML paths and types.
//!
//! A Rust reproduction of Genevès, Layaïda & Schmitt, *Efficient Static
//! Analysis of XML Paths and Types* (PLDI 2007; extended version INRIA
//! RR-6590): a satisfiability solver for a tree logic **Lµ** (an
//! alternation-free µ-calculus with converse over finite focused trees)
//! together with linear translations of XPath expressions and regular tree
//! types into that logic. XPath decision problems — emptiness, containment,
//! overlap, coverage, equivalence, static type-checking — reduce to
//! satisfiability with single-exponential complexity in the size of the
//! lean.
//!
//! This crate re-exports the component crates:
//!
//! * [`ftree`] — finite focused trees (zipper) and XML I/O;
//! * [`mulogic`] — the logic: formulas, cycle-freeness, closure/lean,
//!   model checker;
//! * [`bdd`] — the from-scratch BDD engine behind the symbolic solver;
//! * [`xpath`] — parser, set semantics and Lµ compilation of the XPath
//!   fragment;
//! * [`treetypes`] — DTDs, binary tree types and their Lµ compilation;
//! * [`obs`] — the observability substrate: phase-scoped trace recording,
//!   the process-wide metrics registry, and the slow-solve log;
//! * [`solver`] — the explicit (§6.2) and symbolic (§7) satisfiability
//!   algorithms with counter-example reconstruction;
//! * [`analyzer`] — the decision-problem front end;
//! * [`engine`] — the long-lived batch-analysis service: a workspace of
//!   named DTDs/queries, a JSON-lines request protocol, and a parallel
//!   executor with a memoized verdict cache (the `xsat` binary wraps it);
//! * [`serve`] — the TCP serving tier over the same protocol: bounded
//!   admission, per-tenant workspaces, panic containment and graceful
//!   drain (`xsat serve --tcp`).
//!
//! # Quickstart
//!
//! Decision problems are first-class typed values solved under a
//! resource budget — `Analyzer::solve(&Problem, &Limits)` is the single
//! dispatch point, and a budget hit is the typed `unknown` third verdict
//! rather than an unbounded run:
//!
//! ```
//! use xsat::analyzer::{Analyzer, Limits, Problem};
//! use xsat::xpath::parse;
//!
//! let mut az = Analyzer::new();
//! let p = Problem::contains(
//!     parse("a/b//d[prec-sibling::c]/e")?,
//!     None,
//!     parse("a/b//c/foll-sibling::d/e")?,
//!     None,
//! );
//! assert!(az.solve(&p, &Limits::default())?.holds);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub use analyzer;
pub use bdd;
pub use engine;
pub use ftree;
pub use mulogic;
pub use obs;
pub use serve;
pub use solver;
pub use treetypes;
pub use xpath;

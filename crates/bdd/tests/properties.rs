//! Property tests for the BDD engine against a brute-force truth-table
//! oracle on a small variable universe.

use bdd::{Bdd, NodeId};
use proptest::prelude::*;

const NVARS: u32 = 5;

#[derive(Debug, Clone)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Iff(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
    Const(bool),
}

fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0..NVARS).prop_map(Expr::Var),
        any::<bool>().prop_map(Expr::Const),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = arb_expr(depth - 1);
    prop_oneof![
        3 => leaf,
        2 => sub.clone().prop_map(|e| Expr::Not(Box::new(e))),
        2 => (arb_expr(depth - 1), arb_expr(depth - 1))
            .prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
        2 => (arb_expr(depth - 1), arb_expr(depth - 1))
            .prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
        1 => (arb_expr(depth - 1), arb_expr(depth - 1))
            .prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        1 => (arb_expr(depth - 1), arb_expr(depth - 1))
            .prop_map(|(a, b)| Expr::Iff(Box::new(a), Box::new(b))),
        1 => (arb_expr(depth - 1), arb_expr(depth - 1), arb_expr(depth - 1))
            .prop_map(|(a, b, c)| Expr::Ite(Box::new(a), Box::new(b), Box::new(c))),
    ]
    .boxed()
}

fn build(m: &mut Bdd, e: &Expr) -> NodeId {
    match e {
        Expr::Var(v) => m.var(*v),
        Expr::Const(true) => m.one(),
        Expr::Const(false) => m.zero(),
        Expr::Not(a) => {
            let x = build(m, a);
            m.not(x)
        }
        Expr::And(a, b) => {
            let (x, y) = (build(m, a), build(m, b));
            m.and(x, y)
        }
        Expr::Or(a, b) => {
            let (x, y) = (build(m, a), build(m, b));
            m.or(x, y)
        }
        Expr::Xor(a, b) => {
            let (x, y) = (build(m, a), build(m, b));
            m.xor(x, y)
        }
        Expr::Iff(a, b) => {
            let (x, y) = (build(m, a), build(m, b));
            m.iff(x, y)
        }
        Expr::Ite(a, b, c) => {
            let (x, y, z) = (build(m, a), build(m, b), build(m, c));
            m.ite(x, y, z)
        }
    }
}

fn truth(e: &Expr, env: &[bool]) -> bool {
    match e {
        Expr::Var(v) => env[*v as usize],
        Expr::Const(b) => *b,
        Expr::Not(a) => !truth(a, env),
        Expr::And(a, b) => truth(a, env) && truth(b, env),
        Expr::Or(a, b) => truth(a, env) || truth(b, env),
        Expr::Xor(a, b) => truth(a, env) != truth(b, env),
        Expr::Iff(a, b) => truth(a, env) == truth(b, env),
        Expr::Ite(a, b, c) => {
            if truth(a, env) {
                truth(b, env)
            } else {
                truth(c, env)
            }
        }
    }
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0u32..1 << NVARS).map(|m| (0..NVARS).map(|v| m >> v & 1 == 1).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// BDD evaluation equals the truth-table semantics.
    #[test]
    fn bdd_matches_truth_table(e in arb_expr(4)) {
        let mut m = Bdd::new();
        let f = build(&mut m, &e);
        for env in assignments() {
            prop_assert_eq!(m.eval(f, &env), truth(&e, &env));
        }
    }

    /// Canonicity: semantically equal expressions share a node.
    #[test]
    fn bdd_is_canonical(e in arb_expr(3)) {
        let mut m = Bdd::new();
        let f = build(&mut m, &e);
        // Double negation is the identity node-wise.
        let nf = m.not(f);
        let nnf = m.not(nf);
        prop_assert_eq!(nnf, f);
        // f xor f is the zero node.
        let xo = m.xor(f, f);
        prop_assert_eq!(xo, m.zero());
    }

    /// `sat_count` agrees with the truth table.
    #[test]
    fn sat_count_matches(e in arb_expr(3)) {
        let mut m = Bdd::new();
        let f = build(&mut m, &e);
        let expected = assignments().filter(|env| truth(&e, env)).count();
        prop_assert_eq!(m.sat_count(f, NVARS) as usize, expected);
    }

    /// Quantification: ∃v.f matches the or of cofactors, computed by brute
    /// force on the truth table.
    #[test]
    fn exists_matches(e in arb_expr(3), v in 0..NVARS) {
        let mut m = Bdd::new();
        let f = build(&mut m, &e);
        let q = m.quant_set([v]);
        let g = m.exists(f, q);
        for env in assignments() {
            let mut e1 = env.clone();
            e1[v as usize] = false;
            let mut e2 = env.clone();
            e2[v as usize] = true;
            let expected = truth(&e, &e1) || truth(&e, &e2);
            prop_assert_eq!(m.eval(g, &env), expected);
        }
    }

    /// Complement-edge canonical form is sound: negation is an involution
    /// node-for-node, `¬f` evaluates to the negated reference semantics on
    /// every assignment (the truth table is the pre-overhaul reference),
    /// and `f`/`¬f` share their entire diagram.
    #[test]
    fn complement_canonical_form_sound(e in arb_expr(4)) {
        let mut m = Bdd::new();
        let f = build(&mut m, &e);
        let before = m.node_count();
        let nf = m.not(f);
        // A tag flip: no allocation, involutive, distinct unless constant…
        prop_assert_eq!(m.node_count(), before);
        prop_assert_eq!(m.not(nf), f);
        prop_assert!(nf != f);
        // …and the complement denotes exactly the negated function.
        for env in assignments() {
            prop_assert_eq!(m.eval(nf, &env), !truth(&e, &env));
        }
        prop_assert_eq!(m.size(f), m.size(nf));
        // Building the syntactic negation lands on the same id.
        let built = build(&mut m, &Expr::Not(Box::new(e)));
        prop_assert_eq!(built, nf);
    }

    /// A reset manager reused for an unrelated formula behaves exactly
    /// like a fresh one: same evaluations, and canonicity (equal ids for
    /// equal functions) holds within the new generation.
    #[test]
    fn reused_manager_matches_fresh(e1 in arb_expr(3), e2 in arb_expr(3)) {
        let mut shared = Bdd::new();
        let f1 = build(&mut shared, &e1);
        for env in assignments() {
            prop_assert_eq!(shared.eval(f1, &env), truth(&e1, &env));
        }
        shared.reset();
        let f2 = build(&mut shared, &e2);
        let mut fresh = Bdd::new();
        let f2_fresh = build(&mut fresh, &e2);
        for env in assignments() {
            prop_assert_eq!(shared.eval(f2, &env), truth(&e2, &env));
            prop_assert_eq!(shared.eval(f2, &env), fresh.eval(f2_fresh, &env));
        }
        // Reset cleared the arena back to the fresh shape: same node
        // count for the same construction order.
        prop_assert_eq!(shared.node_count(), fresh.node_count());
    }

    /// GC preserves the function of every root.
    #[test]
    fn gc_preserves_functions(e1 in arb_expr(3), e2 in arb_expr(3)) {
        let mut m = Bdd::new();
        let mut f = build(&mut m, &e1);
        let mut g = build(&mut m, &e2);
        // Build garbage.
        let tmp = m.xor(f, g);
        let _ = m.not(tmp);
        m.gc(&mut [&mut f, &mut g]);
        for env in assignments() {
            prop_assert_eq!(m.eval(f, &env), truth(&e1, &env));
            prop_assert_eq!(m.eval(g, &env), truth(&e2, &env));
        }
        // Operations after GC still canonical.
        let h1 = m.and(f, g);
        let h2 = m.and(g, f);
        prop_assert_eq!(h1, h2);
    }
}

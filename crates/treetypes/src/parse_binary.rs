//! Parser for the binary tree type syntax of the paper's Fig 13:
//!
//! ```text
//! $9 -> EPSILON
//!     | text($Epsilon, $Epsilon)
//!     | interwiki($Epsilon, $9)
//! $article -> article($1, $Epsilon)
//! Start Symbol is $article
//! ```
//!
//! [`BinaryType::display`] produces this syntax; [`BinaryType::parse`]
//! reads it back, so binary types can be stored and exchanged directly —
//! the shape the paper's own tool prints.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use ftree::Label;

use crate::binarize::{BinDef, BinVar, BinaryType, NodeAlt};

/// Error returned by [`BinaryType::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBinaryTypeError {
    msg: String,
    line: usize,
}

impl ParseBinaryTypeError {
    fn new(msg: impl Into<String>, line: usize) -> Self {
        ParseBinaryTypeError {
            msg: msg.into(),
            line,
        }
    }

    /// 1-based line of the error.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseBinaryTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "binary type syntax error on line {}: {}",
            self.line, self.msg
        )
    }
}

impl Error for ParseBinaryTypeError {}

/// One alternative as parsed, before variable resolution.
enum RawAlt {
    Epsilon,
    Node {
        label: String,
        content: String,
        next: String,
    },
}

impl BinaryType {
    /// Parses the Fig 13 textual syntax produced by [`BinaryType::display`].
    ///
    /// Variables referenced but never defined on the left-hand side of a
    /// `->` denote the empty-forest variable iff named `Epsilon`; any other
    /// undefined variable is an error. The `Start Symbol is $X` line is
    /// mandatory.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBinaryTypeError`] on malformed input.
    ///
    /// # Example
    ///
    /// ```
    /// use treetypes::BinaryType;
    ///
    /// let bt = BinaryType::parse(r"
    ///     $C -> EPSILON | item($Epsilon, $C)
    ///     $list -> list($C, $Epsilon)
    ///     Start Symbol is $list
    /// ")?;
    /// let doc = ftree::Tree::parse_xml("<list><item/><item/></list>")?;
    /// assert!(bt.matches_tree(&doc));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn parse(input: &str) -> Result<BinaryType, ParseBinaryTypeError> {
        // Join continuation lines: an alternative may start on its own line
        // with `|`.
        let mut defs_src: Vec<(String, String, usize)> = Vec::new();
        let mut start_name: Option<(String, usize)> = None;
        for (ln, raw) in input.lines().enumerate() {
            let line = raw.trim();
            let lineno = ln + 1;
            if line.is_empty() || line.ends_with("type variables.") || line.ends_with("terminals.")
            {
                continue;
            }
            if let Some(rest) = line.strip_prefix("Start Symbol is ") {
                let name = rest
                    .trim()
                    .strip_prefix('$')
                    .ok_or_else(|| ParseBinaryTypeError::new("expected $name", lineno))?;
                start_name = Some((name.to_owned(), lineno));
            } else if let Some(rest) = line.strip_prefix('|') {
                let Some(last) = defs_src.last_mut() else {
                    return Err(ParseBinaryTypeError::new(
                        "continuation '|' before any definition",
                        lineno,
                    ));
                };
                last.1.push('|');
                last.1.push_str(rest);
            } else if let Some((lhs, rhs)) = line.split_once("->") {
                let name = lhs
                    .trim()
                    .strip_prefix('$')
                    .ok_or_else(|| ParseBinaryTypeError::new("expected $name ->", lineno))?;
                defs_src.push((name.to_owned(), rhs.to_owned(), lineno));
            } else {
                return Err(ParseBinaryTypeError::new(
                    format!("unrecognized line {line:?}"),
                    lineno,
                ));
            }
        }
        let Some((start_name, start_line)) = start_name else {
            return Err(ParseBinaryTypeError::new("missing 'Start Symbol is $X'", 0));
        };

        // First pass: allocate variables.
        let mut ids: HashMap<String, BinVar> = HashMap::new();
        let mut names: Vec<String> = Vec::new();
        let alloc = |name: &str, ids: &mut HashMap<String, BinVar>, names: &mut Vec<String>| {
            if let Some(&v) = ids.get(name) {
                return v;
            }
            let v = BinVar::from_index(names.len());
            ids.insert(name.to_owned(), v);
            names.push(name.to_owned());
            v
        };
        // The ε variable is implicit.
        let eps = alloc("Epsilon", &mut ids, &mut names);
        for (name, _, _) in &defs_src {
            alloc(name, &mut ids, &mut names);
        }
        // Second pass: parse alternatives.
        let mut defs: Vec<BinDef> = (0..names.len())
            .map(|_| BinDef {
                nullable: false,
                alts: Vec::new(),
            })
            .collect();
        defs[eps.index()].nullable = true;
        for (name, rhs, lineno) in &defs_src {
            let v = ids[name];
            for alt_src in rhs.split('|') {
                match parse_alt(alt_src.trim(), *lineno)? {
                    RawAlt::Epsilon => defs[v.index()].nullable = true,
                    RawAlt::Node {
                        label,
                        content,
                        next,
                    } => {
                        let c = *ids.get(&content).ok_or_else(|| {
                            ParseBinaryTypeError::new(
                                format!("undefined variable ${content}"),
                                *lineno,
                            )
                        })?;
                        let nx = *ids.get(&next).ok_or_else(|| {
                            ParseBinaryTypeError::new(
                                format!("undefined variable ${next}"),
                                *lineno,
                            )
                        })?;
                        defs[v.index()].alts.push(NodeAlt {
                            label: Label::new(&label),
                            content: c,
                            next: nx,
                        });
                    }
                }
            }
        }
        let start = *ids.get(&start_name).ok_or_else(|| {
            ParseBinaryTypeError::new(format!("undefined start symbol ${start_name}"), start_line)
        })?;
        Ok(BinaryType::from_parts(defs, names, start))
    }
}

/// Parses `EPSILON` or `label($content, $next)`.
fn parse_alt(src: &str, lineno: usize) -> Result<RawAlt, ParseBinaryTypeError> {
    if src == "EPSILON" {
        return Ok(RawAlt::Epsilon);
    }
    let err = |msg: &str| ParseBinaryTypeError::new(msg.to_owned(), lineno);
    let open = src.find('(').ok_or_else(|| err("expected label(...)"))?;
    if !src.ends_with(')') {
        return Err(err("expected closing ')'"));
    }
    let label = src[..open].trim();
    if label.is_empty() {
        return Err(err("empty label"));
    }
    let inner = &src[open + 1..src.len() - 1];
    let (c, n) = inner
        .split_once(',')
        .ok_or_else(|| err("expected two arguments"))?;
    let content = c
        .trim()
        .strip_prefix('$')
        .ok_or_else(|| err("expected $variable as first argument"))?;
    let next = n
        .trim()
        .strip_prefix('$')
        .ok_or_else(|| err("expected $variable as second argument"))?;
    Ok(RawAlt::Node {
        label: label.to_owned(),
        content: content.to_owned(),
        next: next.to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dtd;
    use ftree::Tree;

    #[test]
    fn parse_simple() {
        let bt = BinaryType::parse(
            "$C -> EPSILON | item($Epsilon, $C)\n$list -> list($C, $Epsilon)\nStart Symbol is $list",
        )
        .unwrap();
        assert!(bt.matches_tree(&Tree::parse_xml("<list/>").unwrap()));
        assert!(bt.matches_tree(&Tree::parse_xml("<list><item/><item/></list>").unwrap()));
        assert!(!bt.matches_tree(&Tree::parse_xml("<item/>").unwrap()));
        assert!(!bt.matches_tree(&Tree::parse_xml("<list><list/></list>").unwrap()));
    }

    #[test]
    fn display_parse_roundtrip_on_fixtures() {
        for dtd in [crate::wikipedia(), crate::smil_1_0()] {
            let bt = BinaryType::from_dtd(&dtd);
            let shown = bt.display();
            let reparsed = BinaryType::parse(&shown)
                .unwrap_or_else(|e| panic!("roundtrip parse failed: {e}\n{shown}"));
            // Same language on sample documents.
            let docs = [
                "<article><meta><title/></meta><text/></article>",
                "<smil><body><seq><audio/></seq></body></smil>",
                "<smil><head><meta/></head></smil>",
                "<article><redirect/></article>",
                "<title/>",
            ];
            for d in docs {
                let t = Tree::parse_xml(d).unwrap();
                assert_eq!(
                    bt.matches_tree(&t),
                    reparsed.matches_tree(&t),
                    "disagreement on {d}"
                );
            }
        }
    }

    #[test]
    fn parsed_type_compiles_to_logic() {
        let bt = BinaryType::parse(
            "$C -> EPSILON | item($Epsilon, $C)\n$list -> list($C, $Epsilon)\nStart Symbol is $list",
        )
        .unwrap();
        let mut lg = mulogic::Logic::new();
        let f = bt.formula(&mut lg);
        assert!(mulogic::cycle_free(&lg, f));
        let t = Tree::parse_xml("<list><item/></list>").unwrap();
        let mc = mulogic::ModelChecker::new(&t);
        assert!(mc.holds_at(&lg, f, &mc.foci()[0]));
    }

    #[test]
    fn multiline_alternatives() {
        let bt = BinaryType::parse(
            "$C -> EPSILON\n    | a($Epsilon, $C)\n    | b($Epsilon, $C)\n$r -> r($C, $Epsilon)\nStart Symbol is $r",
        )
        .unwrap();
        assert!(bt.matches_tree(&Tree::parse_xml("<r><a/><b/><a/></r>").unwrap()));
    }

    #[test]
    fn agreement_with_dtd_source() {
        // A type written by hand equals the DTD-compiled one on samples.
        let dtd = Dtd::parse("<!ELEMENT r (a*)> <!ELEMENT a EMPTY>").unwrap();
        let from_dtd = BinaryType::from_dtd(&dtd);
        let by_hand = BinaryType::parse(
            "$C -> EPSILON | a($Epsilon, $C)\n$r -> r($C, $Epsilon)\nStart Symbol is $r",
        )
        .unwrap();
        for d in [
            "<r/>",
            "<r><a/></r>",
            "<r><a/><a/></r>",
            "<a/>",
            "<r><r/></r>",
        ] {
            let t = Tree::parse_xml(d).unwrap();
            assert_eq!(from_dtd.matches_tree(&t), by_hand.matches_tree(&t), "{d}");
        }
    }

    #[test]
    fn errors() {
        assert!(BinaryType::parse("").is_err());
        assert!(BinaryType::parse("$a -> b($Epsilon, $Epsilon)").is_err()); // no start
        assert!(BinaryType::parse("junk\nStart Symbol is $a").is_err());
        assert!(BinaryType::parse("$a -> b($Missing, $Epsilon)\nStart Symbol is $a").is_err());
        assert!(BinaryType::parse("$a -> b($Epsilon)\nStart Symbol is $a").is_err());
    }
}

//! Witness verification: every counter-example is independently re-checked
//! before it leaves the analyzer.
//!
//! The satisfiability backends reconstruct counter-example documents from
//! ψ-type runs (paper §7.2); that reconstruction is the most intricate part
//! of the pipeline, so its output is never trusted blindly.  Each model is
//! replayed through two *independent* oracles:
//!
//! 1. **Semantic** — [`mulogic::model_check`], the denotational semantics of
//!    Fig 2 evaluated over the foci of the concrete tree.  The goal formula
//!    must hold at at least one focus of the model, exactly the plunging
//!    interpretation of satisfiability (§7.1).
//! 2. **Syntactic** — [`Dtd::validates`]: when the decision problem is typed,
//!    the witness document must actually be valid against the governing DTD,
//!    not merely satisfy its compiled tree-logic translation.
//!
//! A rejection by either oracle is a bug in the solver, never a legitimate
//! verdict, and surfaces loudly as [`SolveError::WitnessInvalid`] rather
//! than a silent `fails`.

use mulogic::{Formula, Logic};
use solver::{Model, SolveError};
use treetypes::Dtd;

/// Re-checks a reconstructed `model` against the `goal` formula it is
/// supposed to satisfy, and against every governing DTD in `dtds`.
///
/// Returns `Ok(())` when both oracles accept, and
/// [`SolveError::WitnessInvalid`] when either disagrees with the solver.
/// The DTD oracle only applies to single-rooted witnesses: a multi-rooted
/// model is a hedge, which no XML document type can describe, so only the
/// semantic oracle constrains it.
///
/// # Example
///
/// ```
/// use analyzer::witness::verify_model;
/// use mulogic::Logic;
/// use solver::{Model, SolveError};
///
/// let mut lg = Logic::new();
/// let goal = lg.parse("a & <1>b").unwrap();
/// let good = Model::from_trees(vec![ftree::Tree::parse_xml("<a><b/></a>").unwrap()]);
/// assert!(verify_model(&lg, goal, &good, &[]).is_ok());
///
/// // A hand-corrupted witness is rejected by the model-checking oracle.
/// let bad = Model::from_trees(vec![ftree::Tree::parse_xml("<a><c/></a>").unwrap()]);
/// match verify_model(&lg, goal, &bad, &[]) {
///     Err(SolveError::WitnessInvalid { .. }) => {}
///     other => panic!("expected WitnessInvalid, got {other:?}"),
/// }
/// ```
pub fn verify_model(
    lg: &Logic,
    goal: Formula,
    model: &Model,
    dtds: &[&Dtd],
) -> Result<(), SolveError> {
    if !mulogic::model_check(lg, goal, model.roots()) {
        return Err(invalid(
            lg,
            goal,
            model,
            "the model-checking oracle refutes the witness at every focus",
        ));
    }
    if let [root] = model.roots() {
        for dtd in dtds {
            if !dtd.validates(root) {
                return Err(invalid(
                    lg,
                    goal,
                    model,
                    "the witness is not valid against the governing DTD",
                ));
            }
        }
    }
    Ok(())
}

fn invalid(lg: &Logic, goal: Formula, model: &Model, reason: &str) -> SolveError {
    SolveError::WitnessInvalid {
        formula: lg.display(goal).to_string(),
        reason: reason.to_owned(),
        witness: model.xml(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree::Tree;

    fn model(xml: &str) -> Model {
        Model::from_trees(vec![Tree::parse_xml(xml).unwrap()])
    }

    #[test]
    fn accepts_a_genuine_witness() {
        let mut lg = Logic::new();
        let goal = lg.parse("a & <1>(b & ~<2>T)").unwrap();
        assert!(verify_model(&lg, goal, &model("<a><b/></a>"), &[]).is_ok());
    }

    #[test]
    fn corrupted_witness_is_witness_invalid_never_silent() {
        let mut lg = Logic::new();
        let goal = lg.parse("a & <1>b").unwrap();
        // Deliberately corrupted: the child is c, not b.
        let err = verify_model(&lg, goal, &model("<a><c/></a>"), &[]).unwrap_err();
        match &err {
            SolveError::WitnessInvalid {
                formula,
                reason,
                witness,
            } => {
                assert!(formula.contains('a'));
                assert!(reason.contains("oracle"));
                assert!(witness.contains("<c/>"));
            }
            other => panic!("expected WitnessInvalid, got {other:?}"),
        }
        // The failure is an error, not a verdict: `exhausted()` has nothing
        // to report and the message names the witness.
        assert!(err.exhausted().is_none());
        assert!(err.to_string().contains("invalid witness"));
    }

    #[test]
    fn dtd_oracle_rejects_invalid_documents() {
        let mut lg = Logic::new();
        let goal = lg.parse("doc").unwrap();
        let dtd = Dtd::parse("<!ELEMENT doc (item+)> <!ELEMENT item EMPTY>").unwrap();
        // Semantically fine (the root is labeled doc) but the DTD demands
        // at least one item child.
        let err = verify_model(&lg, goal, &model("<doc/>"), &[&dtd]).unwrap_err();
        assert!(matches!(err, SolveError::WitnessInvalid { .. }));
        assert!(verify_model(&lg, goal, &model("<doc><item/></doc>"), &[&dtd]).is_ok());
    }

    #[test]
    fn hedges_skip_the_dtd_oracle() {
        let mut lg = Logic::new();
        let goal = lg.parse("a").unwrap();
        let dtd = Dtd::parse("<!ELEMENT b EMPTY>").unwrap();
        let hedge = Model::from_trees(vec![
            Tree::parse_xml("<a/>").unwrap(),
            Tree::parse_xml("<a/>").unwrap(),
        ]);
        // Two roots: no DTD can describe a hedge, so only the semantic
        // oracle applies and the mismatched DTD is not consulted.
        assert!(verify_model(&lg, goal, &hedge, &[&dtd]).is_ok());
    }
}

//! Solver results: satisfiability verdicts, models and statistics.

use std::fmt;
use std::time::Duration;

use ftree::{BinaryTree, Label, Tree};

/// A satisfying model: a row of sibling trees (usually a single root).
///
/// The logic's models are focused trees whose top-level context may hold
/// siblings, so a satisfying "document" is in general a hedge; XML documents
/// are the common single-rooted case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    roots: Vec<Tree>,
}

impl Model {
    pub(crate) fn from_binary(root: &BinaryTree) -> Model {
        Model {
            roots: root.to_unranked_row(),
        }
    }

    /// Reassembles a model from an already-decoded root row. The portfolio
    /// coordinator ships models across threads as `Send` binary trees (one
    /// per root) and rebuilds the `Rc`-based row on the calling thread.
    pub(crate) fn from_roots(roots: Vec<Tree>) -> Model {
        Model { roots }
    }

    /// Builds a model from an explicit root row. Used by witness
    /// verification tests and the regression corpus to replay hand-written
    /// counter-examples through the same oracles that gate solver output.
    pub fn from_trees(roots: Vec<Tree>) -> Model {
        Model { roots }
    }

    /// The root row of the model.
    pub fn roots(&self) -> &[Tree] {
        &self.roots
    }

    /// The model as a single tree: the root itself if the row is a
    /// singleton, otherwise a synthetic `#hedge` element wrapping the row.
    pub fn tree(&self) -> Tree {
        match self.roots.as_slice() {
            [one] => one.clone(),
            row => Tree::node(Label::new("hedge"), row.to_vec()),
        }
    }

    /// Renders the model as XML (the start mark becomes `s="1"`).
    pub fn xml(&self) -> String {
        self.tree().to_xml()
    }

    /// Renders the model as indented multi-line XML, for human-facing
    /// counter-example output (`xsat … --explain`).
    pub fn xml_pretty(&self) -> String {
        self.tree().to_xml_pretty()
    }

    /// Total node count.
    pub fn size(&self) -> usize {
        self.roots.iter().map(Tree::size).sum()
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.xml())
    }
}

/// The verdict of a satisfiability run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// A finite focused tree satisfies the formula; a minimal one is
    /// reconstructed (§7.2).
    Satisfiable(Model),
    /// No finite focused tree satisfies the formula.
    Unsatisfiable,
}

impl Outcome {
    /// Whether the verdict is satisfiable.
    pub fn is_satisfiable(&self) -> bool {
        matches!(self, Outcome::Satisfiable(_))
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            Outcome::Satisfiable(m) => Some(m),
            Outcome::Unsatisfiable => None,
        }
    }
}

/// Counters of the BDD kernel underlying one symbolic run — the
/// engineering telemetry of the unique-table arena and the unified
/// operation cache.
///
/// All fields are integers so [`Telemetry`] stays `Eq`/hashable; the
/// derived ratios are exposed as methods ([`BddCounters::load_factor`],
/// [`BddCounters::cache_hit_rate`]) and serialized alongside the raw
/// counters by the engine protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BddCounters {
    /// High-water mark of live BDD nodes over the run.
    pub peak_nodes: usize,
    /// Nodes allocated over the run (monotone: unlike the live count it
    /// survives garbage collection, so it measures allocation pressure).
    pub created_nodes: usize,
    /// Open-addressed unique-table slots at the end of the run.
    pub table_capacity: usize,
    /// Operation-cache lookups that found their result.
    pub cache_hits: u64,
    /// Operation-cache lookups in total.
    pub cache_lookups: u64,
}

impl BddCounters {
    /// Unique-table load factor at the high-water mark:
    /// `peak_nodes / table_capacity`. Peak and capacity are both maxima
    /// of one monotone-capacity manager, so the ratio stays meaningful —
    /// and bounded by the table's 3/4 growth invariant — under
    /// [`Telemetry::merge`], where live node counts sum.
    pub fn load_factor(&self) -> f64 {
        if self.table_capacity == 0 {
            return 0.0;
        }
        self.peak_nodes as f64 / self.table_capacity as f64
    }

    /// Operation-cache hit rate over the run (0 when nothing was looked
    /// up).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / self.cache_lookups as f64
    }

    /// Combines the counters of two runs: peaks and capacities take the
    /// maximum (they describe high-water marks of a store), allocation and
    /// cache traffic sum.
    pub fn merge(self, other: BddCounters) -> BddCounters {
        BddCounters {
            peak_nodes: self.peak_nodes.max(other.peak_nodes),
            created_nodes: self.created_nodes + other.created_nodes,
            table_capacity: self.table_capacity.max(other.table_capacity),
            cache_hits: self.cache_hits + other.cache_hits,
            cache_lookups: self.cache_lookups + other.cache_lookups,
        }
    }
}

/// The kernel's raw run counters map one-to-one onto the telemetry type
/// (which stays a separate struct so the wire shape is decoupled from the
/// kernel); this is the single conversion point.
impl From<bdd::BddStats> for BddCounters {
    fn from(s: bdd::BddStats) -> BddCounters {
        BddCounters {
            peak_nodes: s.peak_nodes,
            created_nodes: s.created_nodes,
            table_capacity: s.table_capacity,
            cache_hits: s.cache_hits,
            cache_lookups: s.cache_lookups,
        }
    }
}

/// Backend-specific measurements of one solver run.
///
/// Each backend reports the counters that are meaningful for its
/// representation; the [`BackendChoice::Dual`](crate::BackendChoice::Dual)
/// cross-check carries both sides. This replaces the old pair of
/// `Option` fields on [`Stats`] whose populated/empty combinations
/// encoded the backend implicitly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Telemetry {
    /// The symbolic BDD backend (§7).
    Symbolic {
        /// Total BDD nodes live in the store when the run finished.
        bdd_nodes: usize,
        /// Kernel counters: peak/created nodes, unique-table capacity,
        /// operation-cache traffic.
        counters: BddCounters,
    },
    /// The explicit enumeration backend (§6.2).
    Explicit {
        /// ψ-types enumerated.
        types: usize,
    },
    /// The witnessed Fig 16 backend.
    Witnessed {
        /// ψ-types enumerated.
        types: usize,
        /// Triples proved when the run finished.
        proved: usize,
        /// Compact XML of the reconstructed satisfying model, when the run
        /// was satisfiable. Kept here (a `Send`-safe string, unlike the
        /// `Rc`-based [`Model`]) so the witness stays reachable wherever
        /// the telemetry travels — across portfolio racer threads and
        /// through memo-cached verdicts — instead of dying with the
        /// outcome.
        witness: Option<String>,
    },
    /// A dual cross-check run: both sub-runs' telemetry, with each
    /// driver's iteration count reported distinctly (the top-level
    /// [`Stats::iterations`] is the symbolic driver's alone — summing the
    /// two drivers used to double-count).
    Dual {
        /// The symbolic sub-run.
        symbolic: Box<Telemetry>,
        /// The explicit sub-run.
        explicit: Box<Telemetry>,
        /// Fixpoint iterations of the symbolic driver.
        symbolic_iterations: usize,
        /// Fixpoint iterations of the explicit driver.
        explicit_iterations: usize,
    },
    /// A portfolio race: the winning backend's telemetry plus the names of
    /// every backend that was actually raced.
    Portfolio {
        /// Protocol name of the backend whose verdict was returned.
        winner: &'static str,
        /// Protocol names of all raced backends, in protocol order.
        raced: Vec<&'static str>,
        /// The winner's own telemetry.
        inner: Box<Telemetry>,
    },
}

/// Protocol order of the backend names, for deterministic portfolio
/// merging (mirrors `BackendChoice::ALL`).
fn backend_rank(name: &str) -> usize {
    ["symbolic", "explicit", "witnessed", "dual", "portfolio"]
        .iter()
        .position(|&n| n == name)
        .unwrap_or(usize::MAX)
}

/// Commutative combine of two optional witness documents: keep the one
/// that exists; when both sub-solves carry one (an equivalence refuted in
/// both directions), keep the lexicographically smaller so the merge never
/// depends on argument order.
fn merge_witness(a: Option<String>, b: Option<String>) -> Option<String> {
    match (a, b) {
        (Some(x), Some(y)) => Some(if x <= y { x } else { y }),
        (x, None) => x,
        (None, y) => y,
    }
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::Symbolic {
            bdd_nodes: 0,
            counters: BddCounters::default(),
        }
    }
}

impl Telemetry {
    /// The backend that produced this telemetry, by protocol name.
    pub fn backend_name(&self) -> &'static str {
        match self {
            Telemetry::Symbolic { .. } => "symbolic",
            Telemetry::Explicit { .. } => "explicit",
            Telemetry::Witnessed { .. } => "witnessed",
            Telemetry::Dual { .. } => "dual",
            Telemetry::Portfolio { .. } => "portfolio",
        }
    }

    /// BDD nodes, when a symbolic run is involved (for dual runs, the
    /// symbolic side's count).
    pub fn bdd_nodes(&self) -> Option<usize> {
        match self {
            Telemetry::Symbolic { bdd_nodes, .. } => Some(*bdd_nodes),
            Telemetry::Dual { symbolic, .. } => symbolic.bdd_nodes(),
            Telemetry::Portfolio { inner, .. } => inner.bdd_nodes(),
            _ => None,
        }
    }

    /// BDD kernel counters, when a symbolic run is involved (for dual
    /// runs, the symbolic side's).
    pub fn bdd_counters(&self) -> Option<&BddCounters> {
        match self {
            Telemetry::Symbolic { counters, .. } => Some(counters),
            Telemetry::Dual { symbolic, .. } => symbolic.bdd_counters(),
            Telemetry::Portfolio { inner, .. } => inner.bdd_counters(),
            _ => None,
        }
    }

    /// Unique-table load factor of the symbolic side, when one exists.
    pub fn load_factor(&self) -> Option<f64> {
        self.bdd_counters().map(BddCounters::load_factor)
    }

    /// Operation-cache hit rate of the symbolic side, when one exists.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        self.bdd_counters().map(BddCounters::cache_hit_rate)
    }

    /// The witnessed backend's reconstructed model as compact XML, when a
    /// satisfiable witnessed run is involved (for portfolio and dual runs,
    /// dug out of the inner telemetry).
    pub fn witness_xml(&self) -> Option<&str> {
        match self {
            Telemetry::Witnessed { witness, .. } => witness.as_deref(),
            Telemetry::Dual { explicit, .. } => explicit.witness_xml(),
            Telemetry::Portfolio { inner, .. } => inner.witness_xml(),
            _ => None,
        }
    }

    /// Enumerated ψ-types, when an enumerating run is involved (for dual
    /// runs, the explicit side's count).
    pub fn explicit_types(&self) -> Option<usize> {
        match self {
            Telemetry::Explicit { types } | Telemetry::Witnessed { types, .. } => Some(*types),
            Telemetry::Dual { explicit, .. } => explicit.explicit_types(),
            Telemetry::Portfolio { inner, .. } => inner.explicit_types(),
            _ => None,
        }
    }

    /// Combines the telemetry of two sub-problems (e.g. the two directions
    /// of an equivalence) by summing the counters.
    ///
    /// The merge is *total*: matching variants combine field-wise
    /// (allocation and cache counters sum, high-water marks take the
    /// maximum), and mismatched variants — which arise in dual mode when a
    /// sub-problem short-circuits one side, or when a multi-part problem
    /// mixes backends — are folded without losing either side: a dual
    /// absorbs a single-backend run into its matching half, and a symbolic
    /// run paired with an enumerating run becomes a dual. The enumerating
    /// variants (explicit, witnessed) fold into the witnessed shape —
    /// summing their shared `types` counter and keeping the witnessed
    /// side's `proved` count — regardless of order.
    ///
    /// The merge is also *commutative*: `a.merge(b)` and `b.merge(a)`
    /// report the same counters for every variant pair, so dual-mode
    /// aggregation never depends on which sub-solve finished first.
    ///
    /// Portfolio telemetry has the highest precedence: merging two
    /// portfolio runs unions the raced sets, keeps the
    /// protocol-order-first winner, and merges the inner telemetry;
    /// merging a portfolio with anything else absorbs the other side into
    /// the portfolio's inner telemetry.
    pub fn merge(self, other: Telemetry) -> Telemetry {
        use Telemetry::{Dual, Explicit, Portfolio, Symbolic, Witnessed};
        match (self, other) {
            (
                Portfolio {
                    winner: wa,
                    raced: ra,
                    inner: ia,
                },
                Portfolio {
                    winner: wb,
                    raced: rb,
                    inner: ib,
                },
            ) => {
                let mut raced: Vec<&'static str> = ra;
                raced.extend(rb);
                raced.sort_by_key(|n| backend_rank(n));
                raced.dedup();
                let winner = if backend_rank(wa) <= backend_rank(wb) {
                    wa
                } else {
                    wb
                };
                Portfolio {
                    winner,
                    raced,
                    inner: Box::new(ia.merge(*ib)),
                }
            }
            (
                Portfolio {
                    winner,
                    raced,
                    inner,
                },
                t,
            )
            | (
                t,
                Portfolio {
                    winner,
                    raced,
                    inner,
                },
            ) => Portfolio {
                winner,
                raced,
                inner: Box::new(inner.merge(t)),
            },
            (
                Symbolic {
                    bdd_nodes: a,
                    counters: ca,
                },
                Symbolic {
                    bdd_nodes: b,
                    counters: cb,
                },
            ) => Symbolic {
                bdd_nodes: a + b,
                counters: ca.merge(cb),
            },
            (Explicit { types: a }, Explicit { types: b }) => Explicit { types: a + b },
            (
                Witnessed {
                    types: a,
                    proved: pa,
                    witness: wa,
                },
                Witnessed {
                    types: b,
                    proved: pb,
                    witness: wb,
                },
            ) => Witnessed {
                types: a + b,
                proved: pa + pb,
                witness: merge_witness(wa, wb),
            },
            (
                Dual {
                    symbolic: sa,
                    explicit: ea,
                    symbolic_iterations: sia,
                    explicit_iterations: eia,
                },
                Dual {
                    symbolic: sb,
                    explicit: eb,
                    symbolic_iterations: sib,
                    explicit_iterations: eib,
                },
            ) => Dual {
                symbolic: Box::new(sa.merge(*sb)),
                explicit: Box::new(ea.merge(*eb)),
                symbolic_iterations: sia + sib,
                explicit_iterations: eia + eib,
            },
            // A dual absorbs a single-backend run into its matching half.
            (
                Dual {
                    symbolic,
                    explicit,
                    symbolic_iterations,
                    explicit_iterations,
                },
                s @ Symbolic { .. },
            ) => Dual {
                symbolic: Box::new(symbolic.merge(s)),
                explicit,
                symbolic_iterations,
                explicit_iterations,
            },
            (
                s @ Symbolic { .. },
                Dual {
                    symbolic,
                    explicit,
                    symbolic_iterations,
                    explicit_iterations,
                },
            ) => Dual {
                symbolic: Box::new(s.merge(*symbolic)),
                explicit,
                symbolic_iterations,
                explicit_iterations,
            },
            (
                Dual {
                    symbolic,
                    explicit,
                    symbolic_iterations,
                    explicit_iterations,
                },
                e,
            ) => Dual {
                symbolic,
                explicit: Box::new(explicit.merge(e)),
                symbolic_iterations,
                explicit_iterations,
            },
            (
                e,
                Dual {
                    symbolic,
                    explicit,
                    symbolic_iterations,
                    explicit_iterations,
                },
            ) => Dual {
                symbolic,
                explicit: Box::new(e.merge(*explicit)),
                symbolic_iterations,
                explicit_iterations,
            },
            // Symbolic + enumerating: the pair is exactly a dual's shape
            // (no driver iteration counts are known for the halves).
            (s @ Symbolic { .. }, e) => Dual {
                symbolic: Box::new(s),
                explicit: Box::new(e),
                symbolic_iterations: 0,
                explicit_iterations: 0,
            },
            (e, s @ Symbolic { .. }) => Dual {
                symbolic: Box::new(s),
                explicit: Box::new(e),
                symbolic_iterations: 0,
                explicit_iterations: 0,
            },
            // Explicit vs witnessed: both enumerate ψ-types. Fold to the
            // witnessed shape in either order, summing the shared `types`
            // counter and keeping the proved count — the pre-fix left-shape
            // rule silently dropped `proved` when the explicit run came
            // first.
            (
                Explicit { types: a },
                Witnessed {
                    types: b,
                    proved: pb,
                    witness: wb,
                },
            ) => Witnessed {
                types: a + b,
                proved: pb,
                witness: wb,
            },
            (
                Witnessed {
                    types: a,
                    proved: pa,
                    witness: wa,
                },
                Explicit { types: b },
            ) => Witnessed {
                types: a + b,
                proved: pa,
                witness: wa,
            },
        }
    }
}

/// Measurements of one solver run.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// `|Lean(ψ)|` — the exponent of the complexity bound.
    pub lean_size: usize,
    /// `|cl(ψ)|`.
    pub closure_size: usize,
    /// Fixpoint iterations performed.
    pub iterations: usize,
    /// Wall-clock time of the satisfiability loop.
    pub duration: Duration,
    /// Backend-specific counters.
    pub telemetry: Telemetry,
}

impl Stats {
    /// Combines the measurements of two sub-solves of one logical problem
    /// (e.g. the two directions of an equivalence): sizes take the
    /// maximum, iterations and wall clock sum, telemetry merges
    /// field-wise (see [`Telemetry::merge`]).
    pub fn merge(self, other: Stats) -> Stats {
        Stats {
            lean_size: self.lean_size.max(other.lean_size),
            closure_size: self.closure_size.max(other.closure_size),
            iterations: self.iterations + other.iterations,
            duration: self.duration + other.duration,
            telemetry: self.telemetry.merge(other.telemetry),
        }
    }
}

/// A verdict together with its statistics.
#[derive(Debug)]
pub struct Solved {
    /// The verdict.
    pub outcome: Outcome,
    /// Measurements.
    pub stats: Stats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_single_root() {
        let t = Tree::parse_xml("<a><b/></a>").unwrap();
        let b = BinaryTree::from_unranked(&t);
        let m = Model::from_binary(&b);
        assert_eq!(m.roots().len(), 1);
        assert_eq!(m.tree(), t);
        assert_eq!(m.size(), 2);
    }

    #[test]
    fn model_hedge() {
        let a = BinaryTree::new(
            "a",
            false,
            None,
            Some(BinaryTree::new("b", false, None, None)),
        );
        let m = Model::from_binary(&a);
        assert_eq!(m.roots().len(), 2);
        assert_eq!(m.tree().label().as_str(), "hedge");
    }

    #[test]
    fn outcome_accessors() {
        let o = Outcome::Unsatisfiable;
        assert!(!o.is_satisfiable());
        assert!(o.model().is_none());
    }

    fn sym(bdd_nodes: usize, counters: BddCounters) -> Telemetry {
        Telemetry::Symbolic {
            bdd_nodes,
            counters,
        }
    }

    #[test]
    fn telemetry_accessors_and_merge() {
        let c10 = BddCounters {
            peak_nodes: 12,
            created_nodes: 20,
            table_capacity: 1024,
            cache_hits: 30,
            cache_lookups: 40,
        };
        let s = sym(10, c10);
        let e = Telemetry::Explicit { types: 4 };
        assert_eq!(s.bdd_nodes(), Some(10));
        assert_eq!(s.explicit_types(), None);
        assert_eq!(e.explicit_types(), Some(4));
        assert_eq!(s.cache_hit_rate(), Some(0.75));
        assert_eq!(s.load_factor(), Some(12.0 / 1024.0));
        let d = Telemetry::Dual {
            symbolic: Box::new(s.clone()),
            explicit: Box::new(e.clone()),
            symbolic_iterations: 3,
            explicit_iterations: 4,
        };
        assert_eq!(d.backend_name(), "dual");
        assert_eq!(d.bdd_nodes(), Some(10));
        assert_eq!(d.explicit_types(), Some(4));
        assert_eq!(d.cache_hit_rate(), Some(0.75));
        let p = Telemetry::Portfolio {
            winner: "symbolic",
            raced: vec!["symbolic", "explicit"],
            inner: Box::new(s.clone()),
        };
        assert_eq!(p.backend_name(), "portfolio");
        assert_eq!(p.bdd_nodes(), Some(10));
        assert_eq!(p.cache_hit_rate(), Some(0.75));
        assert_eq!(p.explicit_types(), None);
        let c5 = BddCounters {
            peak_nodes: 50,
            created_nodes: 7,
            table_capacity: 512,
            cache_hits: 1,
            cache_lookups: 2,
        };
        let merged = s.merge(sym(5, c5));
        assert_eq!(
            merged,
            sym(
                15,
                BddCounters {
                    peak_nodes: 50,
                    created_nodes: 27,
                    table_capacity: 1024,
                    cache_hits: 31,
                    cache_lookups: 42,
                }
            )
        );
        let w = Telemetry::Witnessed {
            types: 2,
            proved: 3,
            witness: None,
        };
        assert_eq!(
            w.clone().merge(w),
            Telemetry::Witnessed {
                types: 4,
                proved: 6,
                witness: None
            }
        );
    }

    #[test]
    fn merge_is_total_over_mismatched_variants() {
        let s = sym(10, BddCounters::default());
        let e = Telemetry::Explicit { types: 4 };
        let w = Telemetry::Witnessed {
            types: 2,
            proved: 3,
            witness: None,
        };
        let d = Telemetry::Dual {
            symbolic: Box::new(s.clone()),
            explicit: Box::new(e.clone()),
            symbolic_iterations: 2,
            explicit_iterations: 5,
        };
        // A portfolio absorbs anything into its inner telemetry, keeping
        // the winner and raced set.
        let p = Telemetry::Portfolio {
            winner: "witnessed",
            raced: vec!["symbolic", "witnessed"],
            inner: Box::new(s.clone()),
        };
        let m = p.clone().merge(w.clone());
        match &m {
            Telemetry::Portfolio { winner, raced, .. } => {
                assert_eq!(*winner, "witnessed");
                assert_eq!(raced, &vec!["symbolic", "witnessed"]);
            }
            other => panic!("expected portfolio, got {other:?}"),
        }
        assert_eq!(m.explicit_types(), Some(2));
        // Two portfolios union the raced sets and keep the
        // protocol-order-first winner.
        let p2 = Telemetry::Portfolio {
            winner: "explicit",
            raced: vec!["explicit", "dual"],
            inner: Box::new(e.clone()),
        };
        match p.clone().merge(p2) {
            Telemetry::Portfolio { winner, raced, .. } => {
                assert_eq!(winner, "explicit");
                assert_eq!(raced, vec!["symbolic", "explicit", "witnessed", "dual"]);
            }
            other => panic!("expected portfolio, got {other:?}"),
        }
        // A dual absorbs a symbolic run into its symbolic half…
        let m = d.clone().merge(s.clone());
        assert_eq!(m.bdd_nodes(), Some(20));
        assert_eq!(m.explicit_types(), Some(4));
        // …and an enumerating run into its explicit half, in either order.
        let m = w.clone().merge(d.clone());
        assert_eq!(m.backend_name(), "dual");
        assert_eq!(m.explicit_types(), Some(6));
        let m = d.clone().merge(e.clone());
        assert_eq!(m.explicit_types(), Some(8));
        // Symbolic + enumerating forms a dual without dropping a side.
        let m = s.clone().merge(w.clone());
        assert_eq!(m.backend_name(), "dual");
        assert_eq!(m.bdd_nodes(), Some(10));
        assert_eq!(m.explicit_types(), Some(2));
        let m = e.clone().merge(s);
        assert_eq!(m.backend_name(), "dual");
        assert_eq!(m.explicit_types(), Some(4));
        // Explicit vs witnessed sums the shared types counter.
        assert_eq!(e.merge(w).explicit_types(), Some(6));
    }

    #[test]
    fn merge_is_commutative_over_every_variant_pair() {
        let variants = [
            sym(
                10,
                BddCounters {
                    peak_nodes: 12,
                    created_nodes: 20,
                    table_capacity: 1024,
                    cache_hits: 30,
                    cache_lookups: 40,
                },
            ),
            Telemetry::Explicit { types: 4 },
            Telemetry::Witnessed {
                types: 2,
                proved: 3,
                witness: None,
            },
            Telemetry::Dual {
                symbolic: Box::new(sym(
                    5,
                    BddCounters {
                        peak_nodes: 50,
                        created_nodes: 7,
                        table_capacity: 512,
                        cache_hits: 1,
                        cache_lookups: 2,
                    },
                )),
                explicit: Box::new(Telemetry::Witnessed {
                    types: 6,
                    proved: 5,
                    witness: None,
                }),
                symbolic_iterations: 2,
                explicit_iterations: 3,
            },
            Telemetry::Portfolio {
                winner: "witnessed",
                raced: vec!["symbolic", "witnessed"],
                inner: Box::new(Telemetry::Witnessed {
                    types: 8,
                    proved: 1,
                    witness: None,
                }),
            },
            Telemetry::Portfolio {
                winner: "symbolic",
                raced: vec!["symbolic", "explicit"],
                inner: Box::new(sym(7, BddCounters::default())),
            },
        ];
        for a in &variants {
            for b in &variants {
                assert_eq!(
                    a.clone().merge(b.clone()),
                    b.clone().merge(a.clone()),
                    "merge must not depend on argument order: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn explicit_witnessed_merge_never_drops_proved() {
        // Regression: Explicit.merge(Witnessed) used to keep the Explicit
        // shape, silently discarding the witnessed side's proved counter —
        // observable in dual mode when a Dual carrying an Explicit half
        // absorbed a Witnessed run.
        let e = Telemetry::Explicit { types: 4 };
        let w = Telemetry::Witnessed {
            types: 2,
            proved: 3,
            witness: None,
        };
        let expect = Telemetry::Witnessed {
            types: 6,
            proved: 3,
            witness: None,
        };
        assert_eq!(e.clone().merge(w.clone()), expect);
        assert_eq!(w.merge(e), expect);
    }
}

//! Shared preparation: ν-collapse, the plunging formula, closure and lean.

use mulogic::{Closure, Formula, Lean, Logic};

/// A satisfiability problem after preprocessing (§7.1).
///
/// The goal ϕ is tested through the *plunging formula*
/// `ψ = µX.ϕ ∨ ⟨1⟩X ∨ ⟨2⟩X` checked at root types (no pending backward
/// modality), which lets both solvers track only sets of ψ-types instead of
/// per-type witness maps.
#[derive(Debug)]
pub struct Prepared {
    /// The original goal ϕ (after `collapse_nu`).
    pub goal: Formula,
    /// The plunged formula ψ.
    pub psi: Formula,
    /// `cl(ψ)`.
    pub closure: Closure,
    /// `Lean(ψ)`.
    pub lean: Lean,
    /// Whether ϕ mentions the start proposition: models then must carry
    /// exactly one mark and the final check runs on the marked set.
    pub uses_mark: bool,
}

impl Prepared {
    /// Preprocesses a goal formula.
    ///
    /// # Panics
    ///
    /// Panics if `goal` is not closed.
    pub fn new(lg: &mut Logic, goal: Formula) -> Prepared {
        let goal = lg.collapse_nu(goal);
        assert!(lg.is_closed(goal), "satisfiability goal must be closed");
        let x = lg.fresh_var("Xplunge");
        let xv = lg.var(x);
        let d1 = lg.diam(mulogic::Program::Down1, xv);
        let d2 = lg.diam(mulogic::Program::Down2, xv);
        let or1 = lg.or(goal, d1);
        let body = lg.or(or1, d2);
        let psi = lg.mu1(x, body);
        let closure = Closure::compute(lg, psi);
        let lean = Lean::compute(lg, &closure);
        let uses_mark = lg.mentions_start(goal);
        Prepared {
            goal,
            psi,
            closure,
            lean,
            uses_mark,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plunging_adds_descent_diamonds() {
        let mut lg = Logic::new();
        let goal = lg.parse("a & <1>b").unwrap();
        let p = Prepared::new(&mut lg, goal);
        // Lean must contain ⟨1⟩X and ⟨2⟩X for the plunge variable.
        let descent: Vec<_> = p.lean.diam_entries().collect();
        assert!(descent.len() >= 3, "{descent:?}");
        assert!(!p.uses_mark);
    }

    #[test]
    fn mark_detection() {
        let mut lg = Logic::new();
        let goal = lg.parse("a & s").unwrap();
        let p = Prepared::new(&mut lg, goal);
        assert!(p.uses_mark);
    }

    #[test]
    fn nu_is_collapsed() {
        let mut lg = Logic::new();
        let goal = lg.parse("let_nu X = a & <1>X in X").unwrap();
        // Would panic in Closure::compute if ν survived.
        let _ = Prepared::new(&mut lg, goal);
    }
}

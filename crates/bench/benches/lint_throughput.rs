//! Lint-engine baseline: findings/sec and probes/sec for a full lint run
//! over the seeded corpus workspace, cold (fresh engine, empty memo
//! cache) vs. memo-warm (the same engine immediately re-linting — every
//! probe answered from the verdict cache).
//!
//! The warm run exercises the lint op's incrementality claim: probes are
//! ordinary memoized decision problems, so a re-lint after nothing
//! changed should cost roughly the plan + judge passes alone. The
//! one-sample summary lands in `BENCH_lint.json` at the workspace root;
//! CI runs this bench with `CRITERION_SAMPLES=1` so engine refactors that
//! regress the probe fan-out fail loudly.

use criterion::{criterion_group, criterion_main, Criterion};
use engine::{Engine, EngineConfig, Value};
use std::hint::black_box;
use std::time::Instant;

/// The seeded lint corpus: one planted finding per rule.
const SEEDED: &str = include_str!("../../../fixtures/lint/seeded.jsonl");

fn engine_with_corpus() -> Engine {
    let mut e = Engine::with_config(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    });
    let out = e.run_batch_lines(SEEDED);
    assert_eq!(out.stats.errors, 0, "seeded corpus must load cleanly");
    e
}

/// One lint run; returns (findings, probes, elapsed ms).
fn lint_once(e: &mut Engine) -> (f64, f64, f64) {
    let started = Instant::now();
    let r = e.execute_line(black_box(r#"{"op":"lint"}"#));
    let elapsed = started.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true));
    let findings = r.get("findings").and_then(Value::as_f64).unwrap();
    let probes = r.get("probes").and_then(Value::as_f64).unwrap();
    assert!(findings > 0.0, "the seeded corpus must produce findings");
    (findings, probes, elapsed)
}

fn bench_lint_throughput(c: &mut Criterion) {
    let samples: usize = std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    // Instrumented cold/warm pairs outside the timing loops, for the
    // findings/sec report and BENCH_lint.json. Cold engines are rebuilt
    // per sample; the warm engine re-lints its own populated cache.
    let mut cold_ms = f64::INFINITY;
    let mut findings = 0.0;
    let mut probes = 0.0;
    for _ in 0..samples {
        let mut e = engine_with_corpus();
        let (f, p, ms) = lint_once(&mut e);
        findings = f;
        probes = p;
        cold_ms = cold_ms.min(ms);
    }
    let mut warm_engine = engine_with_corpus();
    let _ = lint_once(&mut warm_engine);
    let hits_before = warm_engine.counters().cache_hits;
    let mut warm_ms = f64::INFINITY;
    for _ in 0..samples {
        let (_, _, ms) = lint_once(&mut warm_engine);
        warm_ms = warm_ms.min(ms);
    }
    // Every warm probe is a memo hit — the incremental-lint guarantee.
    let warm_hits = warm_engine.counters().cache_hits - hits_before;
    assert_eq!(warm_hits as f64, probes * samples as f64);

    let round3 = |v: f64| (v * 1000.0).round() / 1000.0;
    let per_sec = |n: f64, ms: f64| round3(n / ms * 1000.0);
    println!(
        "lint-throughput: cold {cold_ms:.1} ms ({} findings, {} probes, {:.1} probes/sec)",
        findings,
        probes,
        probes / cold_ms * 1000.0,
    );
    println!(
        "lint-throughput: warm {warm_ms:.1} ms (all probes memo-cached), speedup {:.1}x",
        cold_ms / warm_ms.max(1e-9),
    );
    let json = format!(
        concat!(
            r#"{{"bench":"lint_throughput","samples":{},"findings":{},"probes":{},"#,
            r#""cold":{{"min_ms":{},"findings_per_sec":{},"probes_per_sec":{}}},"#,
            r#""warm":{{"min_ms":{},"findings_per_sec":{},"probes_per_sec":{}}},"#,
            r#""warm_speedup":{}}}"#,
        ),
        samples,
        findings,
        probes,
        round3(cold_ms),
        per_sec(findings, cold_ms),
        per_sec(probes, cold_ms),
        round3(warm_ms),
        per_sec(findings, warm_ms),
        per_sec(probes, warm_ms),
        round3(cold_ms / warm_ms.max(1e-9)),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lint.json");
    std::fs::write(path, json + "\n").expect("write BENCH_lint.json");
    println!("lint-throughput: wrote {path}");

    let mut g = c.benchmark_group("lint-throughput");
    g.sample_size(10);
    g.bench_function("cold/seeded-corpus", |b| {
        b.iter(|| {
            let mut e = engine_with_corpus();
            lint_once(&mut e).0
        });
    });
    let mut warm = engine_with_corpus();
    let _ = lint_once(&mut warm);
    g.bench_function("warm/seeded-corpus", |b| b.iter(|| lint_once(&mut warm).0));
    g.finish();
}

criterion_group!(benches, bench_lint_throughput);
criterion_main!(benches);

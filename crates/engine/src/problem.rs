//! Executor jobs, their canonical memo keys, and wire-friendly verdicts.
//!
//! The typed decision problem itself is [`analyzer::Problem`] — fully
//! structural, holding parsed query ASTs and DTDs behind [`Arc`](std::sync::Arc),
//! so its derived `Hash`/`Eq` give a *canonical key*: the same logical
//! problem posed twice (under different names, or inline vs. registered)
//! memoizes to one cache entry, and two distinct problems can never alias
//! the way rendered-string keys could. The memo key proper is a [`Job`]:
//! the problem *plus* the backend it runs on — a cached symbolic verdict
//! must never answer an explicit-backend request.
//!
//! Running a job yields a [`RunOutcome`] with three shapes, mirroring the
//! protocol's `status` field: a definite [`Verdict`] (`holds` / `fails`),
//! an [`UnknownVerdict`] when a resource budget ran out (never cached — a
//! retry with bigger limits must re-solve), or an error string (dual-mode
//! disagreement or an oracle-rejected witness; never cached either).
//!
//! Because the memo cache stores whole [`Verdict`]s, the attached
//! [`CounterExample`] evidence survives cache hits for free: a repeated
//! `fails` problem answers with the same verified witness document.

use std::time::Instant;

use analyzer::{Analysis, Analyzer, BackendChoice, Limits, SolveError, Telemetry};
use obs::Recorder;

pub use analyzer::Problem;

/// The memo-cache key and unit of executor work: a canonical problem plus
/// the backend that must answer it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Job {
    /// The structural problem.
    pub problem: Problem,
    /// The backend it runs on.
    pub backend: BackendChoice,
}

/// Solver statistics snapshot carried by every verdict (and preserved on
/// cache hits, where they describe the original solving run).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VerdictStats {
    /// `|Lean(ψ)|` of the goal formula (max over sub-problems).
    pub lean_size: usize,
    /// `|cl(ψ)|` (max over sub-problems).
    pub closure_size: usize,
    /// Fixpoint iterations (summed over sub-problems).
    pub iterations: usize,
    /// Wall-clock of the satisfiability loop(s), in milliseconds.
    pub solve_ms: f64,
    /// Typed per-backend counters (summed over sub-problems).
    pub telemetry: Telemetry,
}

impl VerdictStats {
    fn from_solver(stats: &solver::Stats) -> VerdictStats {
        VerdictStats {
            lean_size: stats.lean_size,
            closure_size: stats.closure_size,
            iterations: stats.iterations,
            solve_ms: duration_ms(stats.duration),
            telemetry: stats.telemetry.clone(),
        }
    }
}

/// A verified counter-example document, the evidence attached to a `fails`
/// verdict of a refutable operation (containment, emptiness, coverage,
/// type-checking, equivalence).
///
/// Both renderings serialize the same tree; `pretty` is the indented
/// multi-line form `--explain` prints. The analyzer re-checks every model
/// through the [`mulogic::model_check`] oracle (and the governing DTDs)
/// before it gets here — a rejected witness is a [`SolveError::WitnessInvalid`]
/// error response, never a silently unverified counter-example — so
/// `verified` is always `true` on emitted verdicts; the field pins that
/// guarantee on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterExample {
    /// Compact single-line XML (identical to the legacy `counter_example`
    /// string field).
    pub xml: String,
    /// Indented multi-line XML for human-facing output.
    pub pretty: String,
    /// Node count of the witness document.
    pub size: usize,
    /// Whether the witness passed the model-checking and DTD oracles
    /// (always `true`; failures become error responses instead).
    pub verified: bool,
}

/// The outcome of one decision problem, in wire-friendly form.
///
/// Counter-examples are rendered to XML eagerly: solver models hold
/// `Rc`-based trees that cannot cross threads, while a `Verdict` must
/// travel from executor workers back to the caller and live in the shared
/// memo cache.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Whether the queried property holds.
    pub holds: bool,
    /// Witness XML: against the property for refutable ops (containment,
    /// emptiness, coverage, type-checking, equivalence), for it on
    /// satisfiability and overlap.
    pub counter_example: Option<String>,
    /// The verified counter-example document, present exactly when the
    /// verdict is `fails` and a witness was reconstructed. `holds`
    /// verdicts of satisfiability/overlap keep their supporting model in
    /// `counter_example` only — that model is evidence *for* the property,
    /// not a counter-example.
    pub counterexample: Option<CounterExample>,
    /// The backend that produced the verdict, echoed on every response.
    pub backend: BackendChoice,
    /// Solver measurements.
    pub stats: VerdictStats,
    /// End-to-end time for this problem (translation + solving), in
    /// milliseconds. Zero-ish on cache hits.
    pub wall_ms: f64,
}

impl Verdict {
    fn from_analysis(a: Analysis, wall_ms: f64) -> Verdict {
        let counterexample = if a.holds {
            None
        } else {
            a.counter_example.as_ref().map(|m| CounterExample {
                xml: m.xml(),
                pretty: m.xml_pretty(),
                size: m.size(),
                verified: true,
            })
        };
        Verdict {
            holds: a.holds,
            counter_example: a.counter_example.map(|m| m.xml()),
            counterexample,
            backend: a.backend,
            stats: VerdictStats::from_solver(&a.stats),
            wall_ms,
        }
    }
}

/// The third verdict: a resource budget ran out before the solve could
/// decide. Reaches JSONL clients as `"status":"unknown"` with the
/// exhausted resource named, and is never memo-cached — a retry with
/// bigger limits re-solves.
#[derive(Debug, Clone, PartialEq)]
pub struct UnknownVerdict {
    /// Protocol name of the exhausted resource (`wall_clock_ms`,
    /// `bdd_nodes`, `iterations`, `lean_diamonds`).
    pub resource: &'static str,
    /// How much was spent when the budget check fired.
    pub spent: u64,
    /// The configured budget.
    pub limit: u64,
    /// Human-readable exhaustion report.
    pub reason: String,
    /// The backend that ran out.
    pub backend: BackendChoice,
    /// End-to-end time until the budget fired, in milliseconds.
    pub wall_ms: f64,
}

/// What one executed job produced — the three protocol statuses beyond a
/// plain `holds`/`fails` split.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// A definite verdict (cacheable).
    Verdict(Verdict),
    /// A budget ran out: `"status":"unknown"`, never cached.
    Unknown(UnknownVerdict),
    /// A solver-level failure (dual-mode disagreement, or a witness the
    /// verification oracles rejected): an error response, never cached.
    Error(String),
}

impl RunOutcome {
    /// The definite verdict, when there is one.
    pub fn verdict(&self) -> Option<&Verdict> {
        match self {
            RunOutcome::Verdict(v) => Some(v),
            _ => None,
        }
    }
}

/// Solves a job on the given analyzer under the given limits, folding the
/// typed [`SolveError`] into the protocol's three-way outcome.
///
/// Phase and step events of the solve are recorded on `rec` (pass
/// [`Recorder::noop`] to run silently), and every run updates the
/// process-wide [`obs::metrics`] registry: `xsat_solves_total` and the
/// `xsat_solve_latency_ms` histogram by operation × backend × status,
/// `xsat_unknown_total` by exhausted resource, and the
/// `xsat_bdd_peak_nodes` high-water gauge.
pub fn run_job(az: &mut Analyzer, job: &Job, limits: &Limits, rec: &Recorder) -> RunOutcome {
    let started = Instant::now();
    az.set_backend(job.backend);
    let outcome = match az.solve_traced(&job.problem, limits, rec) {
        Ok(analysis) => {
            let analysis = rescue_witness(az, job, limits, analysis);
            RunOutcome::Verdict(Verdict::from_analysis(
                analysis,
                duration_ms(started.elapsed()),
            ))
        }
        Err(e @ SolveError::ResourceExhausted { .. }) => {
            let x = e.exhausted().expect("exhausted variant");
            RunOutcome::Unknown(UnknownVerdict {
                resource: x.resource.as_str(),
                spent: x.spent,
                limit: x.limit,
                reason: e.to_string(),
                backend: job.backend,
                wall_ms: duration_ms(started.elapsed()),
            })
        }
        Err(e @ (SolveError::Disagreement { .. } | SolveError::WitnessInvalid { .. })) => {
            RunOutcome::Error(e.to_string())
        }
    };
    record_metrics(job, &outcome, duration_ms(started.elapsed()));
    outcome
}

/// Re-solves on the witnessed backend when a refuting analysis carries no
/// model, so `fails` verdicts of refutable operations always ship evidence
/// when one is computable.
///
/// Every current backend reconstructs a model on satisfiable outcomes, so
/// this is a defensive path; a rescue that itself fails (exhaustion, lean
/// too large) is swallowed and the original verdict stands, witness-less.
/// Satisfiability and overlap are excluded: their `fails` means the goal is
/// *unsatisfiable*, so no witness document can exist.
fn rescue_witness(az: &mut Analyzer, job: &Job, limits: &Limits, a: Analysis) -> Analysis {
    let refutable = !matches!(job.problem, Problem::Sat { .. } | Problem::Overlap { .. });
    if a.holds
        || a.counter_example.is_some()
        || !refutable
        || job.backend == BackendChoice::Witnessed
    {
        return a;
    }
    az.set_backend(BackendChoice::Witnessed);
    let rescued = az.solve_traced(&job.problem, limits, &Recorder::noop());
    az.set_backend(job.backend);
    match rescued {
        Ok(r) if !r.holds && r.counter_example.is_some() => Analysis {
            counter_example: r.counter_example,
            ..a
        },
        _ => a,
    }
}

/// The protocol status of an outcome, as the wire string.
pub(crate) fn outcome_status(outcome: &RunOutcome) -> &'static str {
    match outcome {
        RunOutcome::Verdict(v) if v.holds => "holds",
        RunOutcome::Verdict(_) => "fails",
        RunOutcome::Unknown(_) => "unknown",
        RunOutcome::Error(_) => "error",
    }
}

fn record_metrics(job: &Job, outcome: &RunOutcome, wall_ms: f64) {
    let m = obs::metrics();
    let labels = [
        ("op", job.problem.op_name()),
        ("backend", job.backend.as_str()),
        ("status", outcome_status(outcome)),
    ];
    m.counter("xsat_solves_total", &labels).inc();
    m.histogram("xsat_solve_latency_ms", &labels)
        .observe_ms(wall_ms);
    match outcome {
        RunOutcome::Unknown(u) => {
            m.counter("xsat_unknown_total", &[("resource", u.resource)])
                .inc();
        }
        RunOutcome::Verdict(v) => {
            if let Some(peak) = peak_nodes(&v.stats.telemetry) {
                m.gauge("xsat_bdd_peak_nodes", &[]).record_max(peak);
            }
        }
        RunOutcome::Error(_) => {}
    }
}

/// The BDD peak-node count of a solve, when a symbolic half ran.
fn peak_nodes(t: &Telemetry) -> Option<u64> {
    match t {
        Telemetry::Symbolic { counters, .. } => Some(counters.peak_nodes as u64),
        Telemetry::Dual { symbolic, .. } => peak_nodes(symbolic),
        Telemetry::Portfolio { inner, .. } => peak_nodes(inner),
        Telemetry::Explicit { .. } | Telemetry::Witnessed { .. } => None,
    }
}

pub(crate) fn duration_ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xpath::Expr;

    fn q(src: &str) -> Arc<Expr> {
        Arc::new(xpath::parse(src).unwrap())
    }

    fn job(problem: Problem, backend: BackendChoice) -> Job {
        Job { problem, backend }
    }

    #[test]
    fn run_produces_counter_example() {
        let mut az = Analyzer::new();
        let p = Problem::contains(
            q("child::c/preceding-sibling::a[child::b]"),
            None,
            q("child::c[child::b]"),
            None,
        );
        let out = run_job(
            &mut az,
            &job(p, BackendChoice::Symbolic),
            &Limits::default(),
            &Recorder::noop(),
        );
        let v = out.verdict().expect("definite verdict");
        assert!(!v.holds);
        let xml = v.counter_example.as_ref().expect("witness expected");
        assert!(xml.contains("<a>"), "{xml}");
        assert!(v.stats.lean_size > 0);
        assert!(v.wall_ms >= 0.0);
        assert_eq!(v.backend, BackendChoice::Symbolic);
        assert_eq!(v.stats.telemetry.backend_name(), "symbolic");
    }

    #[test]
    fn equivalence_merges_stats() {
        let mut az = Analyzer::new();
        let p = Problem::equiv(q("a/b[c]"), None, q("a/b[c]"), None);
        let out = run_job(
            &mut az,
            &job(p, BackendChoice::Symbolic),
            &Limits::default(),
            &Recorder::noop(),
        );
        let v = out.verdict().expect("definite verdict");
        assert!(v.holds);
        assert!(v.counter_example.is_none());
        assert!(v.stats.iterations > 0);
    }

    #[test]
    fn backends_are_distinct_jobs() {
        use std::collections::HashMap;
        let p = Problem::contains(q("a/b"), None, q("a/*"), None);
        let mut m = HashMap::new();
        m.insert(job(p.clone(), BackendChoice::Symbolic), 1);
        // The same problem under another backend is a different cache key.
        assert!(!m.contains_key(&job(p.clone(), BackendChoice::Explicit)));
        assert!(m.contains_key(&job(p, BackendChoice::Symbolic)));
    }

    #[test]
    fn run_on_reference_backends_and_dual() {
        let p = Problem::overlap(q("child::a"), None, q("child::*"), None);
        for backend in [
            BackendChoice::Explicit,
            BackendChoice::Witnessed,
            BackendChoice::Dual,
        ] {
            let mut az = Analyzer::new();
            let out = run_job(
                &mut az,
                &job(p.clone(), backend),
                &Limits::default(),
                &Recorder::noop(),
            );
            let v = out.verdict().unwrap_or_else(|| panic!("{backend}"));
            assert!(v.holds, "{backend}");
            assert_eq!(v.backend, backend);
            assert_eq!(v.stats.telemetry.backend_name(), backend.as_str());
        }
    }

    #[test]
    fn exhausted_jobs_come_back_unknown() {
        let mut az = Analyzer::new();
        let p = Problem::sat(q("a/b[c]"), None);
        let starved = Limits {
            max_iterations: Some(1),
            ..Limits::default()
        };
        let out = run_job(
            &mut az,
            &job(p, BackendChoice::Symbolic),
            &starved,
            &Recorder::noop(),
        );
        match out {
            RunOutcome::Unknown(u) => {
                assert_eq!(u.resource, "iterations");
                assert_eq!((u.spent, u.limit), (1, 1));
                assert!(u.reason.contains("resource exhausted"), "{}", u.reason);
                assert_eq!(u.backend, BackendChoice::Symbolic);
            }
            other => panic!("expected unknown, got {other:?}"),
        }
    }
}

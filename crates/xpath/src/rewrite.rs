//! Semantics-preserving XPath simplification.
//!
//! The paper motivates equivalence checking by query *reformulation and
//! optimization* (its §1 cites logic-based XPath optimizers). This module
//! implements a small rewriting engine whose rules are classical:
//!
//! * canonical left association of `/`, so normal forms are independent of
//!   how a `Seq` spine was built;
//! * trivial-step elimination: `p/self::* → p`, `self::*/p → p`;
//! * qualifier fusion: `p[q1][q2] → p[q1 and q2]`;
//! * the `//`-fusion `desc-or-self::*/child::t → descendant::t` (and the
//!   same for `descendant`);
//! * parent-of-child introduction: `child::σ/parent::* → self::*[child::σ]`;
//! * boolean cleanup: `not(not(q)) → q`, duplicate union/intersection
//!   branches.
//!
//! Every rule is proved sound in two independent ways by this crate's
//! tests: on random trees against the denotational interpreter, and — for
//! the equivalence judgement itself — by the satisfiability solver in the
//! `analyzer` crate's integration tests.

use crate::ast::{Axis, Expr, NodeTest, Path, Qualifier};

/// Applies the rewrite rules bottom-up until a fixpoint.
///
/// # Example
///
/// ```
/// use xpath::{normalize, parse};
///
/// let e = parse("a/self::*//b[c][d]").unwrap();
/// let n = normalize(&e);
/// assert_eq!(n.to_string(), "child::a/descendant::b[child::c and child::d]");
/// ```
pub fn normalize(e: &Expr) -> Expr {
    let mut cur = e.clone();
    loop {
        let next = rewrite_expr(&cur);
        if next == cur {
            return cur;
        }
        cur = next;
    }
}

fn rewrite_expr(e: &Expr) -> Expr {
    match e {
        Expr::Absolute(p) => Expr::Absolute(rewrite_path(p)),
        Expr::Relative(p) => Expr::Relative(rewrite_path(p)),
        Expr::Union(a, b) => {
            let (ra, rb) = (rewrite_expr(a), rewrite_expr(b));
            if ra == rb {
                ra
            } else {
                Expr::Union(Box::new(ra), Box::new(rb))
            }
        }
        Expr::Intersect(a, b) => {
            let (ra, rb) = (rewrite_expr(a), rewrite_expr(b));
            if ra == rb {
                ra
            } else {
                Expr::Intersect(Box::new(ra), Box::new(rb))
            }
        }
    }
}

/// A bare `self::*` step (no qualifier).
fn is_trivial_self(p: &Path) -> bool {
    matches!(p, Path::Step(Axis::SelfAxis, NodeTest::Star))
}

/// `child::t ↦ descendant::t` (and through one qualifier layer), the right
/// factor of the `desc-or-self::*/child::t` fusion.
fn fuse_descendant(p: &Path) -> Option<Path> {
    match p {
        Path::Step(Axis::Child, t) | Path::Step(Axis::Descendant, t) => {
            Some(Path::Step(Axis::Descendant, *t))
        }
        Path::Qualified(inner, q) => {
            let fused = fuse_descendant(inner)?;
            Some(Path::Qualified(Box::new(fused), q.clone()))
        }
        _ => None,
    }
}

fn rewrite_path(p: &Path) -> Path {
    match p {
        Path::Seq(a, b) => {
            let ra = rewrite_path(a);
            let rb = rewrite_path(b);
            // p/self::* → p and self::*/p → p.
            if is_trivial_self(&rb) {
                return ra;
            }
            if is_trivial_self(&ra) {
                return rb;
            }
            // Canonical left association: a/(b/c) → (a/b)/c. Keeping every
            // `Seq` spine left-associated means the pairwise rules below see
            // each adjacent step pair regardless of how the expression was
            // built, so normal forms don't depend on association.
            if let Path::Seq(y, z) = rb {
                return Path::Seq(Box::new(Path::Seq(Box::new(ra), y)), z);
            }
            // Left-associated variant: (x/desc-or-self::*)/child::t →
            // x/descendant::t.
            if let Path::Seq(x, mid) = &ra {
                if matches!(**mid, Path::Step(Axis::DescOrSelf, NodeTest::Star)) {
                    if let Some(fused) = fuse_descendant(&rb) {
                        return Path::Seq(x.clone(), Box::new(fused));
                    }
                }
            }
            // desc-or-self::*/child::t → descendant::t  (the `//` fusion);
            // desc-or-self::*/descendant::t → descendant::t.
            if let Path::Step(Axis::DescOrSelf, NodeTest::Star) = ra {
                match &rb {
                    Path::Step(Axis::Child, t) => return Path::Step(Axis::Descendant, *t),
                    Path::Step(Axis::Descendant, t) => return Path::Step(Axis::Descendant, *t),
                    Path::Qualified(inner, q) => {
                        if let Path::Step(Axis::Child, t) = **inner {
                            return Path::Qualified(
                                Box::new(Path::Step(Axis::Descendant, t)),
                                q.clone(),
                            );
                        }
                    }
                    _ => {}
                }
            }
            // child::σ/parent::* → self::*[child::σ].
            if let (Path::Step(Axis::Child, t), Path::Step(Axis::Parent, NodeTest::Star)) =
                (&ra, &rb)
            {
                return Path::Qualified(
                    Box::new(Path::Step(Axis::SelfAxis, NodeTest::Star)),
                    Box::new(Qualifier::Path(Box::new(Path::Step(Axis::Child, *t)))),
                );
            }
            Path::Seq(Box::new(ra), Box::new(rb))
        }
        Path::Qualified(inner, q) => {
            let ri = rewrite_path(inner);
            let rq = rewrite_qualifier(q);
            // p[q1][q2] → p[q1 and q2].
            if let Path::Qualified(inner2, q1) = ri {
                return Path::Qualified(inner2, Box::new(Qualifier::And(q1, Box::new(rq))));
            }
            Path::Qualified(Box::new(ri), Box::new(rq))
        }
        Path::Step(..) => p.clone(),
        Path::Union(a, b) => {
            let (ra, rb) = (rewrite_path(a), rewrite_path(b));
            if ra == rb {
                ra
            } else {
                Path::Union(Box::new(ra), Box::new(rb))
            }
        }
    }
}

fn rewrite_qualifier(q: &Qualifier) -> Qualifier {
    match q {
        Qualifier::And(a, b) => {
            let (ra, rb) = (rewrite_qualifier(a), rewrite_qualifier(b));
            if ra == rb {
                ra
            } else {
                Qualifier::And(Box::new(ra), Box::new(rb))
            }
        }
        Qualifier::Or(a, b) => {
            let (ra, rb) = (rewrite_qualifier(a), rewrite_qualifier(b));
            if ra == rb {
                ra
            } else {
                Qualifier::Or(Box::new(ra), Box::new(rb))
            }
        }
        Qualifier::Not(inner) => {
            let ri = rewrite_qualifier(inner);
            // not(not(q)) → q.
            if let Qualifier::Not(q2) = ri {
                *q2
            } else {
                Qualifier::Not(Box::new(ri))
            }
        }
        Qualifier::Path(p) => Qualifier::Path(Box::new(rewrite_path(p))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eval_on_tree, parse};
    use ftree::Tree;

    fn norm(src: &str) -> String {
        normalize(&parse(src).unwrap()).to_string()
    }

    #[test]
    fn self_elimination() {
        assert_eq!(norm("a/self::*"), "child::a");
        assert_eq!(norm("self::*/a"), "child::a");
        assert_eq!(norm("a/self::*/b"), "child::a/child::b");
        // A qualified self step is NOT eliminated.
        assert_eq!(norm("a/self::*[b]"), "child::a/self::*[child::b]");
    }

    #[test]
    fn double_slash_fusion() {
        assert_eq!(norm("a//b"), "child::a/descendant::b");
        assert_eq!(norm("//b"), "/descendant::b");
        assert_eq!(norm("a//b[c]"), "child::a/descendant::b[child::c]");
    }

    #[test]
    fn qualifier_fusion_and_double_negation() {
        assert_eq!(norm("a[b][c]"), "child::a[child::b and child::c]");
        assert_eq!(norm("a[not(not(b))]"), "child::a[child::b]");
    }

    #[test]
    fn child_parent_introduction() {
        assert_eq!(norm("b/.."), "self::*[child::b]");
    }

    #[test]
    fn duplicate_branches() {
        assert_eq!(norm("a | a"), "child::a");
        assert_eq!(norm("a ∩ a"), "child::a");
        assert_eq!(norm("a[b or b]"), "child::a[child::b]");
    }

    #[test]
    fn normalization_preserves_semantics_on_samples() {
        let docs = [
            "<r s=\"1\"><a><b/><c/></a><a><b><d/></b></a></r>",
            "<a s=\"1\"><b><c/></b><b/><d/></a>",
        ];
        let queries = [
            "a/self::*//b[c][not(not(d))]",
            "b/..",
            "a | a",
            ".//b",
            "a//b | a/self::*/descendant::b",
        ];
        for d in docs {
            let t = Tree::parse_xml(d).unwrap();
            for q in queries {
                let e = parse(q).unwrap();
                let n = normalize(&e);
                assert_eq!(
                    eval_on_tree(&e, &t),
                    eval_on_tree(&n, &t),
                    "{q} vs {n} on {d}"
                );
            }
        }
    }
}

//! Abstract syntax of Lµ formulas (Fig 1 of the paper).

use ftree::Label;

/// A program (modality) `a ∈ {1, 2, 1̄, 2̄}`.
///
/// This is the navigation alphabet of [`ftree::Direction`], re-exported under
/// the logic's name.
pub type Program = ftree::Direction;

/// A fixpoint variable.
///
/// Variables are allocated by [`Logic::fresh_var`](crate::Logic::fresh_var)
/// (or by the parser) and carry a display name in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Dense index of this variable within its [`Logic`](crate::Logic).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A formula of Lµ, as a hash-consed id into a [`Logic`](crate::Logic) arena.
///
/// Two formulas constructed in the same arena are equal iff they are
/// structurally identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Formula(pub(crate) u32);

impl Formula {
    /// Dense index of this formula within its arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The shape of a formula node (Fig 1).
///
/// Negation is primitive only on atomic propositions, the start proposition
/// and `⟨a⟩⊤`, exactly as in the paper; general negation is the *derived*
/// operation [`Logic::not`](crate::Logic::not). As a convenience the syntax
/// also includes `False`; the paper spells it `σ ∧ ¬σ`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FormulaKind {
    /// `⊤`.
    True,
    /// `⊥` (the paper uses `σ ∧ ¬σ`).
    False,
    /// Atomic proposition `σ`: the node in focus is named σ.
    Prop(Label),
    /// Negated atomic proposition `¬σ`.
    NotProp(Label),
    /// Start proposition `s`: the node in focus carries the start mark.
    Start,
    /// Negated start proposition `¬s`.
    NotStart,
    /// Fixpoint variable.
    Var(Var),
    /// Disjunction `ϕ ∨ ψ`.
    Or(Formula, Formula),
    /// Conjunction `ϕ ∧ ψ`.
    And(Formula, Formula),
    /// Existential modality `⟨a⟩ϕ`: some `a`-neighbour satisfies ϕ.
    Diam(Program, Formula),
    /// `¬⟨a⟩⊤`: the focus has no `a`-neighbour.
    NotDiamTrue(Program),
    /// Least n-ary fixpoint `µ(Xᵢ = ϕᵢ) in ψ`.
    Mu(Box<[(Var, Formula)]>, Formula),
    /// Greatest n-ary fixpoint `ν(Xᵢ = ϕᵢ) in ψ`.
    ///
    /// On finite focused trees the two fixpoints coincide for cycle-free
    /// formulas (Lemma 4.2); the solver works on µ-only formulas obtained
    /// via [`Logic::collapse_nu`](crate::Logic::collapse_nu).
    Nu(Box<[(Var, Formula)]>, Formula),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_small_and_copyable() {
        fn assert_copy<T: Copy>() {}
        assert_copy::<Formula>();
        assert_copy::<Var>();
        assert_copy::<Program>();
        assert!(std::mem::size_of::<Formula>() <= 4);
    }
}

//! Regular tree types for XML: DTD content models, validation, the binary
//! encoding of §5.2 (Fig 13), and the linear translation into Lµ (Fig 14).
//!
//! Regular tree languages subsume the mainstream XML schema formalisms
//! (DTD, XML Schema, Relax NG); this crate implements the DTD front end the
//! paper's evaluation uses, with three interchangeable semantics that are
//! cross-checked in tests:
//!
//! 1. [`Dtd::validates`] — direct validation by Brzozowski derivatives of
//!    the content models (the oracle);
//! 2. [`BinaryType::matches_tree`] — the first-child/next-sibling binary
//!    encoding of the type (Fig 13);
//! 3. [`BinaryType::formula`] / [`Dtd::formula`] — the Lµ translation
//!    (Fig 14), model-checked on concrete trees.
//!
//! The bundled [`smil_1_0`], [`xhtml_1_0_strict`] and [`wikipedia`] fixtures
//! are the workloads of the paper's Table 1 and Table 2.
//!
//! # Example
//!
//! ```
//! use treetypes::{Dtd, BinaryType};
//!
//! let dtd = Dtd::parse("<!ELEMENT list (item*)> <!ELEMENT item EMPTY>")?;
//! let t = ftree::Tree::parse_xml("<list><item/><item/></list>")?;
//! assert!(dtd.validates(&t));
//! let bt = BinaryType::from_dtd(&dtd);
//! assert!(bt.matches_tree(&t));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binarize;
mod compile;
mod content;
mod dtd;
mod fixtures;
mod parse_binary;

pub use binarize::{BinDef, BinVar, BinaryType, NodeAlt};
pub use content::Content;
pub use dtd::{Dtd, ParseDtdError};
pub use fixtures::{
    smil_1_0, wikipedia, xhtml_1_0_strict, SMIL_1_0_DTD, WIKIPEDIA_DTD, XHTML_1_0_STRICT_DTD,
};
pub use parse_binary::ParseBinaryTypeError;

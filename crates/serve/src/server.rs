//! The server: accept loop, bounded connection pool, worker pool, and the
//! graceful drain-then-stop lifecycle.
//!
//! Lifecycle is a one-way ladder: `Running` → `Draining` → `Stopped`.
//! `Draining` (entered by the `shutdown` op or [`Server::shutdown`])
//! closes admission — new problems are shed, the queue refuses pushes —
//! while workers finish the backlog; the drain waits for the in-flight
//! count to hit zero under [`ServerConfig::drain_deadline`], cancelling
//! stragglers through the armed drain [`CancelToken`](solver::CancelToken)
//! if the deadline fires. Only in `Stopped` are sockets shut down: every
//! in-flight response has been handed to its connection's writer by then,
//! and writers flush before their connections close.

use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use analyzer::AnalyzerOptions;
use engine::{Job, Verdict};
use solver::CancelToken;

use crate::conn::handle_connection;
use crate::queue::Queue;
use crate::tenant::{Inflight, Tenants};
use crate::worker::{lock, worker_loop, WorkUnit};
use crate::ServerConfig;

/// The lifecycle ladder (one-way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LifeState {
    /// Accepting connections and admitting work.
    Running,
    /// Admission closed; in-flight work finishing.
    Draining,
    /// Sockets closed; threads exiting.
    Stopped,
}

/// What a graceful shutdown achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Whether the in-flight count reached zero before sockets closed.
    pub drained: bool,
    /// Whether the drain deadline fired and stragglers were cancelled
    /// through the drain token (their responses are typed `unknown`).
    pub forced: bool,
    /// Requests still unanswered when sockets closed (0 when `drained`).
    pub pending: usize,
}

/// State shared by the accept loop, every connection, and every worker.
pub(crate) struct Shared {
    /// The construction-time configuration.
    pub config: ServerConfig,
    /// Analyzer construction options (worker rebuilds after a contained
    /// panic use these).
    pub options: AnalyzerOptions,
    /// The bounded admission queue.
    pub queue: Queue<WorkUnit>,
    /// The tenant registry.
    pub tenants: Tenants,
    /// The shared structural memo cache.
    pub cache: Mutex<HashMap<Job, Verdict>>,
    /// The server-wide in-flight tally the drain waits on.
    pub inflight: Arc<Inflight>,
    /// The armed cancel token cloned into every admitted job's limits.
    pub drain: CancelToken,
    /// Worker-thread count (for `stats`).
    pub threads: usize,
    state: Mutex<LifeState>,
    state_cv: Condvar,
    /// Read-half clones of every live connection, keyed by connection id,
    /// for the forced socket shutdown at stop. Connection threads remove
    /// their own entry on exit, so the registry (and its file
    /// descriptors) stays bounded by the live-connection count.
    conns: Mutex<HashMap<u64, TcpStream>>,
    conn_seq: AtomicUsize,
    active: AtomicUsize,
    addr: SocketAddr,
}

impl Shared {
    /// The current lifecycle state.
    pub(crate) fn state(&self) -> LifeState {
        *lock(&self.state)
    }

    /// The effective per-line byte cap.
    pub(crate) fn max_line_bytes(&self) -> usize {
        if self.config.max_line_bytes == 0 {
            engine::DEFAULT_MAX_LINE_BYTES
        } else {
            self.config.max_line_bytes
        }
    }

    /// Live connections right now.
    pub(crate) fn active_connections(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// The full graceful shutdown: close admission, drain under the
    /// deadline, cancel stragglers, then stop sockets. Idempotent —
    /// concurrent callers all block until the drain completes and get
    /// the same report shape.
    pub(crate) fn drain_and_stop(&self) -> DrainReport {
        {
            let mut st = lock(&self.state);
            if *st == LifeState::Running {
                *st = LifeState::Draining;
            }
        }
        // Admission closes: readers shed new problems (state check), and
        // the queue refuses racing pushes while workers drain its backlog
        // and exit.
        self.queue.close();
        let mut forced = false;
        let mut drained = self.inflight.wait_zero(self.config.drain_deadline);
        if !drained {
            // Deadline fired: cancel whatever is still running. Every
            // admitted job's limits carry this token, and solves poll it
            // at each budget checkpoint, so this converges quickly — but
            // give it a bounded second window, never an unbounded wait.
            forced = true;
            self.drain.cancel();
            drained = self.inflight.wait_zero(self.config.drain_deadline);
        }
        let pending = self.inflight.count();
        // Stop: close sockets and wake the accept loop.
        {
            let mut st = lock(&self.state);
            *st = LifeState::Stopped;
            self.state_cv.notify_all();
        }
        for s in lock(&self.conns).values() {
            // Read-side only: pending writers may still be flushing the
            // final responses of the drain.
            let _ = s.shutdown(Shutdown::Read);
        }
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        DrainReport {
            drained,
            forced,
            pending,
        }
    }

    /// Blocks until the state reaches `Stopped`.
    fn wait_stopped(&self) {
        let mut st = lock(&self.state);
        while *st != LifeState::Stopped {
            st = self
                .state_cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// A running TCP server. Dropping it without calling [`Server::wait`] or
/// [`Server::shutdown`] leaks the listener thread; call one of them.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:7678"`; port `0` picks a free one),
    /// spawns the worker pool and the accept loop, and returns
    /// immediately. The server runs until a client sends
    /// `{"op":"shutdown"}` or [`Server::shutdown`] is called.
    pub fn bind(config: ServerConfig, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let threads = if config.threads == 0 {
            std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get)
                .min(16)
        } else {
            config.threads
        };
        let options = AnalyzerOptions {
            backend: config.backend,
            ..AnalyzerOptions::default()
        };
        let drain = CancelToken::armed();
        let shared = Arc::new(Shared {
            queue: Queue::new(config.queue_depth),
            tenants: Tenants::new(&config, &drain),
            cache: Mutex::new(HashMap::new()),
            inflight: Arc::new(Inflight::new()),
            drain,
            threads,
            state: Mutex::new(LifeState::Running),
            state_cv: Condvar::new(),
            conns: Mutex::new(HashMap::new()),
            conn_seq: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            addr,
            options,
            config,
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared.queue, &shared.cache, &shared.options))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let accept = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&shared, &listener))?
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a client's `shutdown` op stops the server, then joins
    /// every thread. The report reflects that drain.
    pub fn wait(mut self) -> DrainReport {
        self.shared.wait_stopped();
        self.join_all();
        // The drain already happened (the shutdown op ran it); report the
        // post-stop state.
        DrainReport {
            drained: self.shared.inflight.count() == 0,
            forced: self.shared.drain.is_cancelled(),
            pending: self.shared.inflight.count(),
        }
    }

    /// Programmatic graceful shutdown: drain under the configured
    /// deadline, stop, join every thread.
    pub fn shutdown(mut self) -> DrainReport {
        let report = self.shared.drain_and_stop();
        self.join_all();
        report
    }

    fn join_all(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Connection threads are detached; give their writers a bounded
        // window to flush and close (they exit on the socket shutdown).
        let deadline = std::time::Instant::now() + self.shared.config.drain_deadline;
        while self.shared.active_connections() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

/// The accept loop: enforce the connection bound, register the stream for
/// forced shutdown, and hand it to a connection thread.
fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    let gauge = obs::metrics().gauge("xsat_connections_active", &[]);
    for stream in listener.incoming() {
        if shared.state() != LifeState::Running {
            break;
        }
        let Ok(stream) = stream else { continue };
        let active = shared.active.load(Ordering::Acquire);
        if active >= shared.config.max_connections {
            obs::metrics()
                .counter("xsat_shed_total", &[("scope", "connections")])
                .inc();
            reject_connection(stream, shared.config.max_connections);
            continue;
        }
        let conn_id = shared.conn_seq.fetch_add(1, Ordering::AcqRel) as u64;
        if let Ok(read_half) = stream.try_clone() {
            lock(&shared.conns).insert(conn_id, read_half);
        }
        shared.active.fetch_add(1, Ordering::AcqRel);
        gauge.add(1);
        let on_conn = shared.clone();
        let spawned = std::thread::Builder::new()
            .name("serve-conn".into())
            .spawn(move || {
                handle_connection(&on_conn, stream);
                lock(&on_conn.conns).remove(&conn_id);
                on_conn.active.fetch_sub(1, Ordering::AcqRel);
                obs::metrics().gauge("xsat_connections_active", &[]).sub(1);
            });
        if spawned.is_err() {
            lock(&shared.conns).remove(&conn_id);
            shared.active.fetch_sub(1, Ordering::AcqRel);
            gauge.sub(1);
        }
    }
}

/// Answers an over-capacity connection with one typed `error` line and
/// closes it — rejection is explicit and immediate, never a hang.
fn reject_connection(stream: TcpStream, cap: usize) {
    let mut stream = stream;
    let response = engine::error_response(
        None,
        &format!("connection limit ({cap}) reached; retry against a less loaded server"),
    );
    let _ = writeln!(stream, "{}", response.to_json());
    let _ = stream.shutdown(Shutdown::Both);
}

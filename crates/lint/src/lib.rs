//! Workspace lint engine: solver-backed diagnostics over registered XPath
//! queries and DTDs.
//!
//! The paper's satisfiability solver decides *decision problems* — this
//! crate turns it into a *linter*: each rule reduces a query-hygiene
//! question to [`Problem`]s the [`Analyzer`] already knows how to solve,
//! and every finding carries replayable [`Evidence`] — the decided
//! problem, plus the oracle-verified witness document when one exists.
//!
//! The rules (authoritative table: [`RuleId::TABLE`], catalog:
//! `docs/LINT.md`):
//!
//! * **`dead-step`** — per-prefix satisfiability under the governing DTD,
//!   localizing the first axis/test no document can match;
//! * **`contradictory-predicate`** — a predicate that empties its step
//!   (satisfiable without it, unsatisfiable with it) or that provably
//!   never filters anything (removal leaves the query equivalent);
//! * **`redundant-union-branch`** — a `|` branch contained in a sibling;
//! * **`query-shadowing`** — pairwise containment / equivalence between
//!   registered workspace queries;
//! * **`unreachable-element`** — DTD elements unreachable from the root
//!   content graph (a pure graph pass, no solver);
//! * **`wildcard-explosion`** — queries whose lean-diamond count exceeds
//!   the enumeration cap, forcing symbolic-only solving (reads the same
//!   accounting [`solver::Limits::max_lean_diamonds`] gates on).
//!
//! # Architecture
//!
//! Linting is a [`plan`] / solve / [`judge`] pipeline so the host controls
//! how probes are solved. The engine crate fans the probe batch out
//! through its parallel executor and memo cache; the [`LintEngine`] here
//! is the self-contained sequential driver:
//!
//! ```
//! use lint::{LintConfig, LintEngine};
//! use std::sync::Arc;
//! use treetypes::Dtd;
//!
//! let dtd = Arc::new(Dtd::parse(
//!     "<!ELEMENT lib (book*)> <!ELEMENT book (title)> <!ELEMENT title EMPTY>",
//! )?);
//! // Queries run from the document root (the `lib` element): `book/book`
//! // asks for a book nested inside a book, which the DTD forbids.
//! let q = Arc::new(xpath::parse_normalized("book/book")?);
//! let mut engine = LintEngine::new();
//! let report = engine.run(
//!     &[("nested".to_owned(), q)],
//!     &[("lib.dtd".to_owned(), dtd)],
//!     &LintConfig::default(),
//!     &analyzer::Limits::default(),
//! )?;
//! let dead: Vec<_> = report
//!     .diagnostics
//!     .iter()
//!     .filter(|d| d.rule == lint::RuleId::DeadStep)
//!     .collect();
//! assert_eq!(dead.len(), 1);
//! assert_eq!(dead[0].step, Some(1)); // `book` has no `book` child
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diagnostic;
pub mod rules;

use analyzer::{Analyzer, Limits, Problem, SolveError};
use std::sync::Arc;
use treetypes::Dtd;
use xpath::Expr;

pub use diagnostic::{sort_diagnostics, Diagnostic, Evidence, RuleId, Severity};
pub use rules::{
    judge, plan, LintConfig, LintPlan, Probe, ProbeCase, ProbeOutcome, QueryArtifact, RuleSetting,
};

/// Solves one planned probe, mapping the analyzer's three-valued outcome
/// onto [`ProbeOutcome`]. This is the single translation both the
/// sequential [`LintEngine`] and the engine crate's batched executor must
/// agree on: `Ok` verdicts keep their (already oracle-verified) witness
/// document, resource exhaustion becomes [`ProbeOutcome::Unknown`] — which
/// [`judge`] degrades to info-level `unverified` findings — and every
/// other solver error becomes [`ProbeOutcome::Error`].
pub fn solve_probe(az: &mut Analyzer, problem: &Problem, limits: &Limits) -> ProbeOutcome {
    match az.solve(problem, limits) {
        Ok(a) => {
            let witness = a.counter_example.as_ref().map(solver::Model::xml);
            if a.holds {
                ProbeOutcome::Holds { witness }
            } else {
                ProbeOutcome::Fails { witness }
            }
        }
        Err(e @ SolveError::ResourceExhausted { .. }) => ProbeOutcome::Unknown {
            reason: e.to_string(),
        },
        Err(e) => ProbeOutcome::Error {
            reason: e.to_string(),
        },
    }
}

/// The result of one lint run.
#[derive(Debug)]
pub struct LintReport {
    /// Findings, in the protocol's deterministic order.
    pub diagnostics: Vec<Diagnostic>,
    /// How many probes the plan required.
    pub probes: usize,
}

impl LintReport {
    /// The highest severity among the findings, `None` when clean.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// How many findings carry the given severity.
    pub fn count_at(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }
}

/// The self-contained sequential lint driver: owns an [`Analyzer`] and
/// runs [`plan`] → [`solve_probe`] (one by one, sharing the analyzer's
/// arena and BDD manager) → [`judge`].
#[derive(Debug, Default)]
pub struct LintEngine {
    az: Analyzer,
}

impl LintEngine {
    /// An engine with a fresh default analyzer.
    pub fn new() -> LintEngine {
        LintEngine::default()
    }

    /// The underlying analyzer (to select a backend before running).
    pub fn analyzer_mut(&mut self) -> &mut Analyzer {
        &mut self.az
    }

    /// Lints the workspace: every probe is solved under `limits`.
    ///
    /// Fails only on configuration errors (an unknown
    /// [`LintConfig::type_name`]); solver-level failures degrade into
    /// diagnostics instead.
    pub fn run(
        &mut self,
        queries: &[(String, Arc<Expr>)],
        dtds: &[(String, Arc<Dtd>)],
        config: &LintConfig,
        limits: &Limits,
    ) -> Result<LintReport, String> {
        let plan = plan(&mut self.az, queries, dtds, config)?;
        let outcomes: Vec<ProbeOutcome> = plan
            .probes
            .iter()
            .map(|p| solve_probe(&mut self.az, &p.problem, limits))
            .collect();
        let diagnostics = judge(&plan, &outcomes);
        Ok(LintReport {
            diagnostics,
            probes: plan.probes.len(),
        })
    }
}

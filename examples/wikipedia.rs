//! The paper's running type example (Figs 12–14): the Wikipedia DTD
//! fragment, its binary tree type encoding, its Lµ formula, and a few
//! queries analyzed under it.
//!
//! Run with `cargo run --example wikipedia`.

use xsat::analyzer::Analyzer;
use xsat::mulogic::Logic;
use xsat::treetypes::{wikipedia, BinaryType, WIKIPEDIA_DTD};
use xsat::xpath::parse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Fig 12: the DTD fragment ==");
    println!("{}", WIKIPEDIA_DTD.trim());

    let dtd = wikipedia();
    let bt = BinaryType::from_dtd(&dtd);
    println!("\n== Fig 13: binary tree type encoding ==");
    println!("{}", bt.display());

    println!("\n== Fig 14: the Lµ formula ==");
    let mut lg = Logic::new();
    let f = bt.formula(&mut lg);
    println!("{}", lg.display(f));

    println!("\n== Queries under the Wikipedia type ==");
    let mut az = Analyzer::new();

    // Every article has a meta child: //article ⊆ //article[meta].
    let all_articles = parse("//article")?;
    let with_meta = parse("//article[meta]")?;
    let v = az
        .contains(&all_articles, Some(&dtd), &with_meta, Some(&dtd))
        .unwrap();
    println!("//article ⊆ //article[meta] under the DTD: {}", v.holds);

    // A redirect inside history/edit is possible…
    let deep_redirect = parse("//history//redirect")?;
    let v = az.is_satisfiable(&deep_redirect, Some(&dtd)).unwrap();
    println!("//history//redirect satisfiable: {}", v.holds);
    if let Some(m) = &v.counter_example {
        println!("  witness: {}", m.xml());
    }

    // …but a history inside a redirect is not.
    let bad = parse("//redirect//history")?;
    let v = az.is_satisfiable(&bad, Some(&dtd)).unwrap();
    println!("//redirect//history satisfiable: {}", v.holds);

    // Without the type constraint the last query *is* satisfiable.
    let v = az.is_satisfiable(&bad, None).unwrap();
    println!("//redirect//history satisfiable without type: {}", v.holds);
    Ok(())
}

//! The shared worker pool: long-lived analyzers solving admitted work.
//!
//! Each worker thread owns one [`Analyzer`] (its own formula arena and
//! warm BDD manager) and loops on the admission queue. All workers share
//! one structural memo cache. Every solve runs under
//! [`engine::run_job_contained`]: a panicking solve degrades to one
//! `error` response and rebuilds that worker's analyzer — the thread, and
//! every other in-flight request, survives.

use std::collections::HashMap;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use analyzer::{Analyzer, AnalyzerOptions};
use engine::{
    error_response, note_memo_lookup, run_job_contained, trace_value, unknown_response,
    verdict_response, Job, Op, Recorder, RunOutcome, UnknownVerdict, Value, Verdict,
};
use obs::MemorySink;
use solver::Limits;

use crate::queue::Queue;
use crate::tenant::InflightGuard;

/// One admitted decision problem, resolved against its tenant's
/// workspace and awaiting a worker.
pub(crate) struct SolveUnit {
    /// The structural memo key (resolved problem + backend).
    pub job: Job,
    /// Effective limits (tenant defaults, per-request overrides applied,
    /// the server's drain token as cancel).
    pub limits: Limits,
    /// Whether the response carries the solve's event trace.
    pub trace: bool,
    /// Echoed client id.
    pub id: Option<Value>,
    /// The operation, echoed canonically.
    pub op: Op,
    /// Position in the connection's response order.
    pub seq: u64,
    /// The connection's reorder channel.
    pub reply: Sender<(u64, Value)>,
    /// The tenant in-flight slot, released when the response is sent.
    pub guard: InflightGuard,
}

/// A fault-injection work item (`ServerConfig::fault_injection` only):
/// deterministic worker-side failure modes for the test harness.
pub(crate) struct FaultUnit {
    /// What to inject.
    pub kind: FaultKind,
    /// Echoed client id.
    pub id: Option<Value>,
    /// Position in the connection's response order.
    pub seq: u64,
    /// The connection's reorder channel.
    pub reply: Sender<(u64, Value)>,
    /// The tenant in-flight slot.
    pub guard: InflightGuard,
}

/// The injectable faults.
pub(crate) enum FaultKind {
    /// Panic inside the worker (must degrade to an `error` response).
    Panic,
    /// Hold a worker slot for `ms`, polling the drain token — the
    /// deterministic way to saturate the queue and to test cancellation.
    Sleep {
        /// How long to hold the slot.
        ms: u64,
    },
}

/// One unit of admitted work.
pub(crate) enum WorkUnit {
    /// A decision problem.
    Solve(Box<SolveUnit>),
    /// An injected fault.
    Fault(FaultUnit),
}

/// The worker loop: pops until the queue closes and drains, answering
/// every unit through its connection's reorder channel.
pub(crate) fn worker_loop(
    queue: &Queue<WorkUnit>,
    cache: &Mutex<HashMap<Job, Verdict>>,
    options: &AnalyzerOptions,
) {
    let mut az = Analyzer::with_options(options.clone());
    while let Some(unit) = queue.pop() {
        match unit {
            WorkUnit::Solve(unit) => solve(&mut az, options, cache, *unit),
            WorkUnit::Fault(unit) => fault(unit),
        }
    }
}

fn solve(
    az: &mut Analyzer,
    options: &AnalyzerOptions,
    cache: &Mutex<HashMap<Job, Verdict>>,
    unit: SolveUnit,
) {
    let started = Instant::now();
    let capture = unit.trace.then(|| Arc::new(MemorySink::new()));
    let rec = match &capture {
        Some(mem) => Recorder::with_sinks(vec![mem.clone() as Arc<dyn obs::Sink>]),
        None => Recorder::noop(),
    };
    let hit = lock(cache).get(&unit.job).cloned();
    note_memo_lookup(&rec, &unit.job, hit.is_some());
    let (outcome, cached) = match hit {
        Some(v) => (RunOutcome::Verdict(v), true),
        None => {
            let outcome = run_job_contained(az, options, &unit.job, &unit.limits, &rec);
            if let RunOutcome::Verdict(v) = &outcome {
                lock(cache).insert(unit.job.clone(), v.clone());
            }
            (outcome, false)
        }
    };
    let trace = capture.map(|mem| trace_value(&mem.drain()));
    let response = match &outcome {
        RunOutcome::Verdict(v) => {
            let wall_ms = if cached { 0.0 } else { v.wall_ms };
            verdict_response(unit.id.as_ref(), unit.op, v, cached, wall_ms, trace)
        }
        RunOutcome::Unknown(u) => unknown_response(unit.id.as_ref(), unit.op, u, trace),
        RunOutcome::Error(e) => error_response(unit.id.as_ref(), e),
    };
    obs::metrics()
        .histogram("xsat_serve_solve_ms", &[])
        .observe_ms(duration_ms(started.elapsed()));
    // A send error means the connection died mid-request; the verdict is
    // simply dropped (it is already memo-cached if definite).
    let _ = unit.reply.send((unit.seq, response));
    drop(unit.guard);
}

fn fault(unit: FaultUnit) {
    let response = match unit.kind {
        FaultKind::Panic => {
            // The same containment boundary a real solve runs under:
            // the panic degrades to one error response and a metric.
            let err = std::panic::catch_unwind(|| -> () {
                panic!("injected panic (fault-injection op)");
            })
            .expect_err("the injected closure always panics");
            obs::metrics()
                .counter("xsat_worker_panics_total", &[])
                .inc();
            let msg = err
                .downcast_ref::<&str>()
                .copied()
                .unwrap_or("non-string panic payload");
            error_response(
                unit.id.as_ref(),
                &format!("solver panicked ({msg}); the worker survived and this response degraded to an error"),
            )
        }
        FaultKind::Sleep { ms } => {
            let cancel = unit.guard.tenant().limits.cancel.clone();
            let deadline = Instant::now() + Duration::from_millis(ms);
            let mut cancelled = false;
            while Instant::now() < deadline {
                if cancel.is_cancelled() {
                    cancelled = true;
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            let mut fields = Vec::new();
            if let Some(id) = &unit.id {
                fields.push(("id".to_owned(), id.clone()));
            }
            fields.extend([
                ("ok".to_owned(), Value::Bool(true)),
                ("op".to_owned(), Value::from("sleep")),
                ("cancelled".to_owned(), Value::Bool(cancelled)),
            ]);
            Value::Obj(fields)
        }
    };
    let _ = unit.reply.send((unit.seq, response));
    drop(unit.guard);
}

/// A shed verdict: the typed `unknown` an over-admitted request gets
/// instead of unbounded queueing. `scope` names which bound fired
/// (`queue`, `tenant`, or `drain`); `spent`/`limit` report that bound.
/// Sheds are never memo-cached and are counted in `xsat_shed_total`.
pub(crate) fn shed_response(
    id: Option<&Value>,
    op: Op,
    backend: engine::BackendChoice,
    scope: &'static str,
    spent: u64,
    limit: u64,
) -> Value {
    obs::metrics()
        .counter("xsat_shed_total", &[("scope", scope)])
        .inc();
    let unknown = UnknownVerdict {
        resource: "shed",
        spent,
        limit,
        reason: format!(
            "request shed by admission control ({scope} bound {limit} reached); \
             retry against a less loaded server"
        ),
        backend,
        wall_ms: 0.0,
    };
    unknown_response(id, op, &unknown, None)
}

/// Milliseconds of a duration, as f64.
pub(crate) fn duration_ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1000.0
}

/// Locks ignoring poisoning (workers contain panics; a poisoned cache
/// would otherwise wedge every later request).
pub(crate) fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

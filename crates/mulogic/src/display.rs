//! Pretty-printing of formulas in the paper's concrete syntax
//! (`let_mu X = … in …`, `<1>`, `<-1>`, `~`, `&`, `|`).

use std::fmt::Write as _;

use crate::syntax::{Formula, FormulaKind, Program};
use crate::Logic;

fn prog_str(p: Program) -> &'static str {
    match p {
        Program::Down1 => "1",
        Program::Down2 => "2",
        Program::Up1 => "-1",
        Program::Up2 => "-2",
    }
}

/// Precedence levels: 0 = or, 1 = and, 2 = unary/atomic.
fn prec(kind: &FormulaKind) -> u8 {
    match kind {
        FormulaKind::Or(..) => 0,
        FormulaKind::And(..) => 1,
        _ => 2,
    }
}

impl Logic {
    /// Renders `f` in the concrete syntax accepted by [`Logic::parse`].
    ///
    /// # Example
    ///
    /// ```
    /// use mulogic::Logic;
    ///
    /// let mut lg = Logic::new();
    /// let f = lg.parse("a & <1>(b | s)").unwrap();
    /// assert_eq!(lg.display(f), "a & <1>(b | s)");
    /// ```
    pub fn display(&self, f: Formula) -> String {
        let mut out = String::new();
        self.write(&mut out, f, 0);
        out
    }

    fn write(&self, out: &mut String, f: Formula, min_prec: u8) {
        let kind = self.kind(f);
        let p = prec(kind);
        let need_parens = p < min_prec;
        if need_parens {
            out.push('(');
        }
        match kind {
            FormulaKind::True => out.push('T'),
            FormulaKind::False => out.push('F'),
            FormulaKind::Prop(l) => {
                let _ = write!(out, "{l}");
            }
            FormulaKind::NotProp(l) => {
                let _ = write!(out, "~{l}");
            }
            FormulaKind::Start => out.push('s'),
            FormulaKind::NotStart => out.push_str("~s"),
            FormulaKind::Var(v) => out.push_str(self.var_name(*v)),
            FormulaKind::Or(a, b) => {
                self.write(out, *a, 0);
                out.push_str(" | ");
                self.write(out, *b, 1);
            }
            FormulaKind::And(a, b) => {
                self.write(out, *a, 1);
                out.push_str(" & ");
                self.write(out, *b, 2);
            }
            FormulaKind::Diam(a, phi) => {
                let _ = write!(out, "<{}>", prog_str(*a));
                self.write(out, *phi, 2);
            }
            FormulaKind::NotDiamTrue(a) => {
                let _ = write!(out, "~<{}>T", prog_str(*a));
            }
            FormulaKind::Mu(binds, body) | FormulaKind::Nu(binds, body) => {
                let kw = if matches!(kind, FormulaKind::Mu(..)) {
                    "let_mu"
                } else {
                    "let_nu"
                };
                let _ = write!(out, "{kw} ");
                for (i, (v, phi)) in binds.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{} = ", self.var_name(*v));
                    self.write(out, *phi, 1);
                }
                out.push_str(" in ");
                self.write(out, *body, 1);
            }
        }
        if need_parens {
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree::{Direction, Label};

    #[test]
    fn precedence() {
        let mut lg = Logic::new();
        let a = lg.prop(Label::new("a"));
        let b = lg.prop(Label::new("b"));
        let c = lg.prop(Label::new("c"));
        let bc = lg.and(b, c);
        let f = lg.or(a, bc);
        assert_eq!(lg.display(f), "a | b & c");
        let ab = lg.or(a, b);
        let g = lg.and(ab, c);
        assert_eq!(lg.display(g), "(a | b) & c");
    }

    #[test]
    fn modalities_and_fixpoints() {
        let mut lg = Logic::new();
        let x = lg.fresh_var("X");
        let b = lg.prop(Label::new("b"));
        let xv = lg.var(x);
        let d = lg.diam(Direction::Down2, xv);
        let or = lg.or(b, d);
        let f = lg.mu1(x, or);
        let shown = lg.display(f);
        assert!(shown.starts_with("let_mu X"), "{shown}");
        assert!(shown.contains("<2>"), "{shown}");
    }
}

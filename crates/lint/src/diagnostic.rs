//! Diagnostic vocabulary: rule identities, severities, findings, and the
//! solver evidence attached to them.
//!
//! Every rule lives in [`RuleId::TABLE`] — the single authority mapping
//! wire names to default severities and one-line summaries, mirrored by
//! `docs/LINT.md` and the CLI's `--deny`/`--allow` parsing. A
//! [`Diagnostic`] pins a finding to a *subject* (a query or DTD name) and
//! a *span* (a spine-step index plus its rendered form, stable across
//! print→reparse round trips by the `xpath::decompose` contract), and
//! carries [`Evidence`] — the decision [`Problem`] whose verdict backs the
//! finding, with the oracle-verified witness document when one exists.

use analyzer::Problem;

/// Finding severity, ordered `Error > Warning > Info`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth knowing, not actionable by itself.
    Info,
    /// Probably a defect; does not fail `xsat lint`.
    Warning,
    /// A defect; fails `xsat lint` (exit code 1).
    Error,
}

impl Severity {
    /// The wire name of the severity.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }

    /// Parses a wire name.
    pub fn from_wire(name: &str) -> Option<Severity> {
        match name {
            "error" | "deny" => Some(Severity::Error),
            "warning" | "warn" => Some(Severity::Warning),
            "info" => Some(Severity::Info),
            _ => None,
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// A step (axis + node test) no document of the schema can satisfy;
    /// everything after it selects nothing.
    DeadStep,
    /// A predicate that empties its step, or whose removal provably does
    /// not change the selected set.
    ContradictoryPredicate,
    /// A `|` branch contained in a sibling branch.
    RedundantUnionBranch,
    /// A workspace query contained in (or equivalent to) another.
    QueryShadowing,
    /// A DTD element not reachable from the root content graph.
    UnreachableElement,
    /// A query whose lean-diamond count exceeds the enumeration cap,
    /// forcing symbolic-only solving.
    WildcardExplosion,
}

impl RuleId {
    /// The canonical rule table: wire id, default severity, and the
    /// one-line summary. This is the single authority shared by the
    /// config parser, the CLI, and `docs/LINT.md`.
    pub const TABLE: &'static [(RuleId, &'static str, Severity, &'static str)] = &[
        (
            RuleId::DeadStep,
            "dead-step",
            Severity::Error,
            "a step no document of the schema can match",
        ),
        (
            RuleId::ContradictoryPredicate,
            "contradictory-predicate",
            Severity::Warning,
            "a predicate that empties its step or never filters anything",
        ),
        (
            RuleId::RedundantUnionBranch,
            "redundant-union-branch",
            Severity::Warning,
            "a union branch contained in a sibling branch",
        ),
        (
            RuleId::QueryShadowing,
            "query-shadowing",
            Severity::Warning,
            "a workspace query contained in or equivalent to another",
        ),
        (
            RuleId::UnreachableElement,
            "unreachable-element",
            Severity::Warning,
            "a DTD element unreachable from the root content graph",
        ),
        (
            RuleId::WildcardExplosion,
            "wildcard-explosion",
            Severity::Info,
            "a query too wide for the enumerating backends",
        ),
    ];

    /// All rules, in table order.
    pub fn all() -> impl Iterator<Item = RuleId> {
        RuleId::TABLE.iter().map(|&(id, ..)| id)
    }

    /// The wire id of the rule.
    pub fn as_str(self) -> &'static str {
        RuleId::TABLE
            .iter()
            .find(|&&(id, ..)| id == self)
            .map(|&(_, name, ..)| name)
            .expect("every rule is in the table")
    }

    /// Resolves a wire id.
    pub fn from_wire(name: &str) -> Option<RuleId> {
        RuleId::TABLE
            .iter()
            .find(|&&(_, n, ..)| n == name)
            .map(|&(id, ..)| id)
    }

    /// The rule's default severity.
    pub fn default_severity(self) -> Severity {
        RuleId::TABLE
            .iter()
            .find(|&&(id, ..)| id == self)
            .map(|&(_, _, sev, _)| sev)
            .expect("every rule is in the table")
    }

    /// The rule's one-line summary.
    pub fn summary(self) -> &'static str {
        RuleId::TABLE
            .iter()
            .find(|&&(id, ..)| id == self)
            .map(|&(.., s)| s)
            .expect("every rule is in the table")
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The solver evidence behind a finding — auditable and replayable: the
/// witness document re-checks through the model-check + DTD oracles
/// against the carried [`Problem`]'s goal.
#[derive(Debug, Clone, PartialEq)]
pub enum Evidence {
    /// A satisfying model (or counter-example) document, oracle-verified
    /// before it got here.
    Witness {
        /// The decision problem whose solve produced the document.
        problem: Problem,
        /// Compact single-line XML of the witness.
        xml: String,
    },
    /// A proving verdict with no document (the holds side of a refutable
    /// operation, or an unsatisfiable goal).
    Verdict {
        /// The decision problem that was decided.
        problem: Problem,
        /// Its wire status (`holds` / `fails`).
        status: &'static str,
    },
}

impl Evidence {
    /// The operation name of the backing problem.
    pub fn op_name(&self) -> &'static str {
        match self {
            Evidence::Witness { problem, .. } | Evidence::Verdict { problem, .. } => {
                problem.op_name()
            }
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: RuleId,
    /// Effective severity (default or configured override; `unverified`
    /// degradations are always [`Severity::Info`]).
    pub severity: Severity,
    /// The artifact the finding is about: a query or DTD name.
    pub subject: String,
    /// Spine-step index within the subject query, when the finding is
    /// step-localized.
    pub step: Option<usize>,
    /// Rendered form of the localized part (a step, predicate, branch, or
    /// element name).
    pub span: Option<String>,
    /// Human-readable explanation.
    pub message: String,
    /// The solver evidence, absent for pure graph passes.
    pub evidence: Option<Evidence>,
}

impl Diagnostic {
    /// Whether this is an `unverified` degradation (an inconclusive probe
    /// reported at info level instead of a hard error).
    pub fn unverified(&self) -> bool {
        self.message.starts_with("unverified:")
    }
}

/// Sorts diagnostics into the protocol's deterministic order: rule id,
/// then subject, then step span, then message.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.rule.as_str(), &a.subject, a.step, &a.span, &a.message).cmp(&(
            b.rule.as_str(),
            &b.subject,
            b.step,
            &b.span,
            &b.message,
        ))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_round_trips() {
        for id in RuleId::all() {
            assert_eq!(RuleId::from_wire(id.as_str()), Some(id));
            assert!(!id.summary().is_empty());
        }
        assert_eq!(RuleId::from_wire("frobnicate"), None);
        assert_eq!(RuleId::all().count(), 6);
    }

    #[test]
    fn severity_round_trips() {
        for s in [Severity::Error, Severity::Warning, Severity::Info] {
            assert_eq!(Severity::from_wire(s.as_str()), Some(s));
        }
        assert_eq!(Severity::from_wire("deny"), Some(Severity::Error));
        assert_eq!(Severity::from_wire("warn"), Some(Severity::Warning));
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn sorting_is_by_rule_then_span() {
        let d = |rule: RuleId, subject: &str, step: Option<usize>| Diagnostic {
            rule,
            severity: rule.default_severity(),
            subject: subject.to_owned(),
            step,
            span: None,
            message: String::new(),
            evidence: None,
        };
        let mut v = vec![
            d(RuleId::QueryShadowing, "q2", None),
            d(RuleId::DeadStep, "q9", Some(2)),
            d(RuleId::DeadStep, "q1", Some(3)),
            d(RuleId::DeadStep, "q1", Some(1)),
        ];
        sort_diagnostics(&mut v);
        let order: Vec<(&str, Option<usize>)> =
            v.iter().map(|d| (d.subject.as_str(), d.step)).collect();
        assert_eq!(
            order,
            vec![
                ("q1", Some(1)),
                ("q1", Some(3)),
                ("q9", Some(2)),
                ("q2", None)
            ]
        );
    }
}

//! End-to-end rule tests: seeded workspaces with planted defects, exact
//! rule/severity/span assertions, and evidence replay through the
//! model-check + DTD oracles.
//!
//! The seeded library schema (root `lib`):
//!
//! ```text
//! <!ELEMENT lib (book*, journal*)>   book has (title, author*)
//! <!ELEMENT journal (title)>         journal has no author
//! <!ELEMENT orphan (title)>          declared, never reachable
//! ```
//!
//! Queries are evaluated from the document root (the `lib` element), per
//! the root-anchored translation of the paper's §5.2.

use std::collections::BTreeMap;
use std::sync::Arc;

use analyzer::{Limits, Problem};
use lint::{
    Diagnostic, Evidence, LintConfig, LintEngine, LintReport, RuleId, RuleSetting, Severity,
};
use treetypes::Dtd;
use xpath::Expr;

const LIB_DTD: &str = "<!ELEMENT lib (book*, journal*)> <!ELEMENT book (title, author*)> \
                       <!ELEMENT title EMPTY> <!ELEMENT author EMPTY> \
                       <!ELEMENT journal (title)> <!ELEMENT orphan (title)>";

fn dtd(src: &str) -> Arc<Dtd> {
    Arc::new(Dtd::parse(src).expect("test dtd parses"))
}

fn q(src: &str) -> Arc<Expr> {
    Arc::new(xpath::parse_normalized(src).expect("test query parses"))
}

/// A config with exactly one rule enabled (at its default severity).
fn only(rule: RuleId) -> LintConfig {
    let mut settings = BTreeMap::new();
    for r in RuleId::all() {
        if r != rule {
            settings.insert(r, RuleSetting::Off);
        }
    }
    LintConfig {
        settings,
        ..LintConfig::default()
    }
}

fn run(
    queries: &[(&str, &str)],
    dtds: &[(&str, &str)],
    config: &LintConfig,
    limits: &Limits,
) -> LintReport {
    let queries: Vec<(String, Arc<Expr>)> = queries
        .iter()
        .map(|(n, s)| ((*n).to_owned(), q(s)))
        .collect();
    let dtds: Vec<(String, Arc<Dtd>)> = dtds
        .iter()
        .map(|(n, s)| ((*n).to_owned(), dtd(s)))
        .collect();
    LintEngine::new()
        .run(&queries, &dtds, config, limits)
        .expect("lint run succeeds")
}

/// Replays a witness document against the carried problem: the tree must
/// validate against the governing DTD(s) and the compiled goal formula
/// must hold somewhere on it — the same oracle the solver itself passed
/// before releasing the model.
fn replay_witness(d: &Diagnostic) {
    let Some(Evidence::Witness { problem, xml }) = &d.evidence else {
        panic!("expected witness evidence on {d:?}");
    };
    let tree = ftree::Tree::parse_xml(xml).expect("witness XML parses");
    let mut az = analyzer::Analyzer::new();
    let (goal, tys): (_, Vec<&Dtd>) = match problem {
        Problem::Sat { query, ty } => (
            az.query_formula(query, ty.as_deref()),
            ty.iter().map(std::convert::AsRef::as_ref).collect(),
        ),
        other => panic!("witness evidence should back a sat probe, got {other:?}"),
    };
    for t in tys {
        assert!(t.validates(&tree), "witness must validate: {xml}");
    }
    let mc = mulogic::ModelChecker::new(&tree);
    assert!(
        !mc.sat_foci(az.logic_mut(), goal).is_empty(),
        "witness must satisfy the probe goal: {xml}"
    );
}

#[test]
fn dead_step_localizes_the_first_dead_axis() {
    let report = run(
        &[("bad", "book/journal"), ("ok", "book/title")],
        &[("lib", LIB_DTD)],
        &only(RuleId::DeadStep),
        &Limits::default(),
    );
    assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert_eq!(d.rule, RuleId::DeadStep);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.subject, "bad");
    assert_eq!(d.step, Some(1));
    assert_eq!(d.span.as_deref(), Some("child::journal"));
    // The evidence is the satisfiable prefix one step earlier, with its
    // witness document — replayable through the oracles.
    replay_witness(d);
}

#[test]
fn chain_initial_dead_step_carries_a_failing_verdict() {
    let report = run(
        &[("orphaned", "orphan/title")],
        &[("lib", LIB_DTD)],
        &only(RuleId::DeadStep),
        &Limits::default(),
    );
    assert_eq!(report.diagnostics.len(), 1);
    let d = &report.diagnostics[0];
    assert_eq!(d.step, Some(0));
    assert_eq!(d.span.as_deref(), Some("child::orphan"));
    // No earlier prefix exists: the evidence is the failing sat verdict
    // itself.
    let Some(Evidence::Verdict { problem, status }) = &d.evidence else {
        panic!("expected verdict evidence, got {:?}", d.evidence);
    };
    assert_eq!(*status, "fails");
    assert_eq!(problem.op_name(), "sat");
}

#[test]
fn contradictory_predicate_is_flagged_with_a_witness_without_it() {
    let report = run(
        &[("noauthor", "journal[author]")],
        &[("lib", LIB_DTD)],
        &only(RuleId::ContradictoryPredicate),
        &Limits::default(),
    );
    assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert_eq!(d.rule, RuleId::ContradictoryPredicate);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.step, Some(0));
    assert!(d.message.contains("contradicts"), "{}", d.message);
    // The witness shows the step satisfiable once the predicate is gone.
    replay_witness(d);
}

#[test]
fn never_filtering_predicate_is_flagged_as_redundant() {
    // Every book has a title, so `[title]` can never filter anything.
    let report = run(
        &[("alwaystrue", "book[title]")],
        &[("lib", LIB_DTD)],
        &only(RuleId::ContradictoryPredicate),
        &Limits::default(),
    );
    assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert!(d.message.contains("redundant"), "{}", d.message);
    let Some(Evidence::Verdict { problem, status }) = &d.evidence else {
        panic!("expected the equivalence verdict, got {:?}", d.evidence);
    };
    assert_eq!(*status, "holds");
    assert_eq!(problem.op_name(), "equiv");
}

#[test]
fn discriminating_predicate_is_not_flagged() {
    // `[author]` genuinely filters books (author* admits zero authors).
    let report = run(
        &[("filtered", "book[author]")],
        &[("lib", LIB_DTD)],
        &only(RuleId::ContradictoryPredicate),
        &Limits::default(),
    );
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn redundant_union_branch_is_contained_in_its_sibling() {
    let report = run(
        &[("wide", "book | *")],
        &[("lib", LIB_DTD)],
        &only(RuleId::RedundantUnionBranch),
        &Limits::default(),
    );
    assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert_eq!(d.rule, RuleId::RedundantUnionBranch);
    assert_eq!(d.step, Some(0));
    assert_eq!(d.span.as_deref(), Some("child::book"));
    assert!(d.message.contains("contained in branch 1"), "{}", d.message);
    replay_witness(d);
}

#[test]
fn disjoint_union_branches_are_kept() {
    let report = run(
        &[("split", "book | journal")],
        &[("lib", LIB_DTD)],
        &only(RuleId::RedundantUnionBranch),
        &Limits::default(),
    );
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn narrow_query_is_shadowed_by_the_wide_one() {
    let report = run(
        &[("narrow", "book/title"), ("wide", "*/title")],
        &[("lib", LIB_DTD)],
        &only(RuleId::QueryShadowing),
        &Limits::default(),
    );
    assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert_eq!(d.rule, RuleId::QueryShadowing);
    assert_eq!(d.subject, "narrow");
    assert!(
        d.message.contains("`narrow` is shadowed by `wide`"),
        "{}",
        d.message
    );
    replay_witness(d);
}

#[test]
fn equivalent_queries_report_the_later_name_once() {
    // `self::*` is eliminated by normalization, so both parse to the same
    // AST — the strongest form of equivalence.
    let report = run(
        &[("qa", "book/title"), ("qb", "self::*/book/title")],
        &[("lib", LIB_DTD)],
        &only(RuleId::QueryShadowing),
        &Limits::default(),
    );
    assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert_eq!(d.subject, "qb");
    assert!(d.message.contains("equivalent"), "{}", d.message);
}

#[test]
fn dead_queries_do_not_count_as_shadowed() {
    // `book/journal` is empty, hence trivially contained everywhere; the
    // shadowing rule must stay silent about it.
    let report = run(
        &[("dead", "book/journal"), ("live", "book/title")],
        &[("lib", LIB_DTD)],
        &only(RuleId::QueryShadowing),
        &Limits::default(),
    );
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn unreachable_element_is_found_by_the_graph_pass() {
    let report = run(
        &[],
        &[("lib", LIB_DTD)],
        &only(RuleId::UnreachableElement),
        &Limits::default(),
    );
    assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert_eq!(d.rule, RuleId::UnreachableElement);
    assert_eq!(d.subject, "lib");
    assert_eq!(d.span.as_deref(), Some("orphan"));
    assert!(d.evidence.is_none(), "graph pass needs no solver evidence");
}

#[test]
fn wildcard_explosion_reads_the_lean_diamond_accounting() {
    let config = LintConfig {
        max_diamonds: 2,
        ..only(RuleId::WildcardExplosion)
    };
    let report = run(
        &[("wide", "descendant::*/descendant::*"), ("thin", "self::*")],
        &[],
        &config,
        &Limits::default(),
    );
    assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert_eq!(d.rule, RuleId::WildcardExplosion);
    assert_eq!(d.severity, Severity::Info);
    assert_eq!(d.subject, "wide");
    assert!(d.message.contains("diamond"), "{}", d.message);
}

#[test]
fn clean_workspace_reports_nothing() {
    let clean_dtd = "<!ELEMENT lib (book*, journal*)> <!ELEMENT book (title, author*)> \
                     <!ELEMENT title EMPTY> <!ELEMENT author EMPTY> <!ELEMENT journal (title)>";
    let report = run(
        &[("books", "book/title"), ("journals", "journal/title")],
        &[("lib", clean_dtd)],
        &LintConfig::default(),
        &Limits::default(),
    );
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert_eq!(report.max_severity(), None);
    assert!(report.probes > 0, "a clean verdict still solved probes");
}

#[test]
fn starved_limits_degrade_to_unverified_info() {
    let starved = Limits {
        max_bdd_nodes: Some(2),
        ..Limits::default()
    };
    let report = run(
        &[("bad", "book/journal")],
        &[("lib", LIB_DTD)],
        &only(RuleId::DeadStep),
        &starved,
    );
    assert!(!report.diagnostics.is_empty());
    for d in &report.diagnostics {
        assert!(d.unverified(), "{d:?}");
        assert_eq!(d.severity, Severity::Info);
    }
    assert_eq!(report.max_severity(), Some(Severity::Info));
}

#[test]
fn severity_overrides_and_off_are_honoured() {
    let mut settings = BTreeMap::new();
    for r in RuleId::all() {
        settings.insert(r, RuleSetting::Off);
    }
    settings.insert(RuleId::DeadStep, RuleSetting::At(Severity::Info));
    let config = LintConfig {
        settings,
        ..LintConfig::default()
    };
    let report = run(
        &[("bad", "book/journal"), ("u", "book | *")],
        &[("lib", LIB_DTD)],
        &config,
        &Limits::default(),
    );
    assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
    assert_eq!(report.diagnostics[0].rule, RuleId::DeadStep);
    assert_eq!(report.diagnostics[0].severity, Severity::Info);
    assert_eq!(report.count_at(Severity::Info), 1);
}

#[test]
fn unknown_type_name_is_a_config_error() {
    let config = LintConfig {
        type_name: Some("nope".to_owned()),
        ..LintConfig::default()
    };
    let err = LintEngine::new()
        .run(&[], &[], &config, &Limits::default())
        .unwrap_err();
    assert!(err.contains("nope"), "{err}");
}

#[test]
fn diagnostics_are_deterministically_ordered() {
    let workspace: &[(&str, &str)] = &[
        ("z_bad", "book/journal"),
        ("a_bad", "journal/author"),
        ("narrow", "book/title"),
        ("wide", "*/title"),
    ];
    let run_once = || {
        run(
            workspace,
            &[("lib", LIB_DTD)],
            &LintConfig::default(),
            &Limits::default(),
        )
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.diagnostics, b.diagnostics);
    // Sorted by rule id first, then subject.
    let keys: Vec<(&str, &str)> = a
        .diagnostics
        .iter()
        .map(|d| (d.rule.as_str(), d.subject.as_str()))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}

//! The network-native serving tier: a dependency-free `std::net` TCP
//! server speaking the engine's JSONL protocol (v2) to many concurrent
//! clients.
//!
//! The original system shipped as an interactive service front end over
//! the solver; this crate is that front end grown into a real server.
//! One accept loop feeds a bounded connection pool; each connection gets
//! a reader thread (framed, bounded, timeout-guarded reads) and a writer
//! thread (responses written in request order, whatever order the solves
//! finish in); decision problems fan out over a shared pool of worker
//! threads, each owning a long-lived analyzer, all sharing one structural
//! memo cache.
//!
//! Robustness is the design axis, threaded through every layer:
//!
//! - **Admission control**: the request queue is bounded.
//!   When it is full — or a tenant is at its in-flight cap, or the server
//!   is draining — the request is rejected *immediately* with
//!   `status: "unknown", resource: "shed"` instead of queuing unboundedly.
//!   Sheds are typed verdicts, never memo-cached, and counted in
//!   `xsat_shed_total{scope}`.
//! - **Per-tenant isolation**: the optional `tenant` request
//!   field namespaces workspaces — the same query name bound differently
//!   by two tenants can never alias, because decision problems are
//!   resolved to structural ASTs before they reach the shared memo cache.
//!   Each tenant carries its own default [`Limits`] and an in-flight cap
//!   so one tenant cannot starve the rest.
//! - **Failure containment**: every solve runs under
//!   [`engine::run_job_contained`] — a panicking solve degrades to one
//!   `error` response, increments `xsat_worker_panics_total`, and rebuilds
//!   that worker's analyzer; the worker thread never dies. Hostile or
//!   broken clients are bounded too: per-line byte caps (oversized lines
//!   answered with one `error` and discarded), lossy UTF-8 decoding
//!   (garbage becomes a parse error, not a dead stream), and an idle/read
//!   timeout that drops stuck connections without touching the rest.
//! - **Graceful lifecycle**: the `shutdown` op (or
//!   [`Server::shutdown`]) stops admission, drains in-flight work under a
//!   deadline, cancels stragglers through the armed [`CancelToken`] every
//!   admitted job carries, and only then closes sockets — in-flight
//!   responses are flushed before their connections close.
//!
//! ```no_run
//! use serve::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default(), "127.0.0.1:0")?;
//! eprintln!("listening on {}", server.local_addr());
//! let report = server.wait(); // until a client sends {"op":"shutdown"}
//! assert!(report.drained);
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! [`CancelToken`]: solver::CancelToken

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conn;
mod queue;
mod server;
mod tenant;
mod worker;

use std::time::Duration;

use engine::BackendChoice;
use solver::Limits;

pub use server::{DrainReport, Server};

/// Per-tenant configuration: a named namespace with optional overrides of
/// the server-wide defaults. Tenants not listed here are created on first
/// use with the server defaults (and aggregate under the `other` label in
/// per-tenant metrics — the metrics registry keeps label cardinality
/// bounded by configuration, not by traffic).
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// The tenant name (the wire value of the `tenant` request field).
    pub name: String,
    /// Default resource limits for this tenant's solves; `None` inherits
    /// the server-wide defaults. Per-request `limits` objects override
    /// field-wise, as everywhere in the protocol.
    pub limits: Option<Limits>,
    /// In-flight request cap for this tenant; `None` inherits
    /// [`ServerConfig::tenant_inflight`].
    pub max_inflight: Option<usize>,
}

/// Construction-time knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads solving admitted problems; `0` picks the machine's
    /// available parallelism (capped at 16).
    pub threads: usize,
    /// Default solver backend for requests that do not name one.
    pub backend: BackendChoice,
    /// Server-wide default resource limits (the base tenants inherit).
    pub limits: Limits,
    /// Connection-pool bound: concurrent connections beyond this are
    /// answered with one `error` line and closed.
    pub max_connections: usize,
    /// Admission-queue bound: requests beyond this are shed with
    /// `status: "unknown", resource: "shed"` instead of queuing.
    pub queue_depth: usize,
    /// Default per-tenant in-flight cap (admitted but unanswered
    /// requests); a tenant at its cap sheds rather than starving others.
    pub tenant_inflight: usize,
    /// Idle/read timeout per connection: a client that sends nothing (or
    /// stalls mid-line) for this long is dropped. `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// Drain budget of a graceful shutdown: in-flight work gets this long
    /// to finish before the armed [`CancelToken`](solver::CancelToken)
    /// cancels whatever is still running.
    pub drain_deadline: Duration,
    /// Per-line byte cap of every connection; `0` picks
    /// [`engine::DEFAULT_MAX_LINE_BYTES`]. Oversized lines cost one
    /// `error` response, never unbounded memory.
    pub max_line_bytes: usize,
    /// Pre-configured tenants (named limits / in-flight overrides).
    pub tenants: Vec<TenantConfig>,
    /// Enables the fault-injection test ops `{"op":"panic"}` (a solve
    /// that panics in the worker) and `{"op":"sleep","ms":N}` (a solve
    /// that holds a worker slot, polling its cancel token). Off by
    /// default; only test harnesses and the load bench turn this on.
    pub fault_injection: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            threads: 0,
            backend: BackendChoice::default(),
            limits: Limits::default(),
            max_connections: 64,
            queue_depth: 256,
            tenant_inflight: 64,
            read_timeout: Some(Duration::from_secs(30)),
            drain_deadline: Duration::from_secs(5),
            max_line_bytes: 0,
            tenants: Vec::new(),
            fault_injection: false,
        }
    }
}

/// The tenant name requests fall back to when they carry no `tenant`
/// field — single-tenant deployments never need to name one.
pub const DEFAULT_TENANT: &str = "default";

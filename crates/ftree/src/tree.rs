//! Unranked finite trees `t ::= σ[tl]` with an optional start mark.

use std::fmt;
use std::rc::Rc;

use crate::{xml, Label};

/// A finite unranked tree (an XML element and its content).
///
/// Trees are immutable and cheaply cloneable (reference counted). A node may
/// carry the *start mark* `s` of the paper, written `σˢ[tl]`; a well-formed
/// focused tree contains at most one mark.
///
/// # Example
///
/// ```
/// use ftree::Tree;
///
/// let t = Tree::node("a", vec![Tree::leaf("b"), Tree::leaf("c")]);
/// assert_eq!(t.label().as_str(), "a");
/// assert_eq!(t.children().len(), 2);
/// assert_eq!(t.to_xml(), "<a><b/><c/></a>");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tree(Rc<TreeNode>);

#[derive(PartialEq, Eq, Hash)]
struct TreeNode {
    label: Label,
    marked: bool,
    children: Vec<Tree>,
}

impl Tree {
    /// Creates a node with the given label and children.
    pub fn node(label: impl Into<Label>, children: Vec<Tree>) -> Self {
        Tree(Rc::new(TreeNode {
            label: label.into(),
            marked: false,
            children,
        }))
    }

    /// Creates a childless node.
    pub fn leaf(label: impl Into<Label>) -> Self {
        Tree::node(label, Vec::new())
    }

    /// Creates a node carrying the start mark `s`.
    pub fn marked_node(label: impl Into<Label>, children: Vec<Tree>) -> Self {
        Tree(Rc::new(TreeNode {
            label: label.into(),
            marked: true,
            children,
        }))
    }

    /// Returns a copy of this node with the mark set or cleared (children
    /// unchanged).
    pub fn with_mark(&self, marked: bool) -> Self {
        Tree(Rc::new(TreeNode {
            label: self.0.label,
            marked,
            children: self.0.children.clone(),
        }))
    }

    /// The label σ of the root node.
    pub fn label(&self) -> Label {
        self.0.label
    }

    /// Whether the root node carries the start mark.
    pub fn is_marked(&self) -> bool {
        self.0.marked
    }

    /// The children, in document order.
    pub fn children(&self) -> &[Tree] {
        &self.0.children
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(Tree::size).sum::<usize>()
    }

    /// Height of the tree (a leaf has height 1).
    pub fn height(&self) -> usize {
        1 + self.children().iter().map(Tree::height).max().unwrap_or(0)
    }

    /// Number of start marks contained anywhere in the tree.
    pub fn mark_count(&self) -> usize {
        usize::from(self.0.marked) + self.children().iter().map(Tree::mark_count).sum::<usize>()
    }

    /// Returns the same tree with the mark placed on the node reached by the
    /// child-index path `path` (and no mark anywhere else).
    ///
    /// Returns `None` if the path is invalid.
    pub fn mark_at(&self, path: &[usize]) -> Option<Tree> {
        let cleared = self.clear_marks();
        cleared.mark_at_inner(path)
    }

    fn mark_at_inner(&self, path: &[usize]) -> Option<Tree> {
        match path.split_first() {
            None => Some(self.with_mark(true)),
            Some((&i, rest)) => {
                let mut children = self.children().to_vec();
                let child = children.get(i)?;
                children[i] = child.mark_at_inner(rest)?;
                Some(Tree(Rc::new(TreeNode {
                    label: self.label(),
                    marked: self.is_marked(),
                    children,
                })))
            }
        }
    }

    /// Returns the same tree with every mark removed.
    pub fn clear_marks(&self) -> Tree {
        Tree(Rc::new(TreeNode {
            label: self.label(),
            marked: false,
            children: self.children().iter().map(Tree::clear_marks).collect(),
        }))
    }

    /// All child-index paths of nodes, in document order. The empty path is
    /// the root.
    pub fn node_paths(&self) -> Vec<Vec<usize>> {
        let mut out = Vec::with_capacity(self.size());
        let mut stack = vec![(self.clone(), Vec::new())];
        while let Some((t, path)) = stack.pop() {
            for (i, c) in t.children().iter().enumerate().rev() {
                let mut p = path.clone();
                p.push(i);
                stack.push((c.clone(), p));
            }
            out.push(path);
        }
        out.sort();
        out
    }

    /// Renders the tree in XML syntax. The start mark is rendered as the
    /// attribute `s="1"`.
    pub fn to_xml(&self) -> String {
        let mut s = String::new();
        xml::write_tree(&mut s, self);
        s
    }

    /// Renders the tree as indented multi-line XML (two spaces per depth
    /// level), for human-facing counter-example output. The compact
    /// [`Tree::to_xml`] form and this one parse back to the same tree.
    pub fn to_xml_pretty(&self) -> String {
        let mut s = String::new();
        xml::write_tree_pretty(&mut s, self, 0);
        s
    }

    /// Parses a tree from a tiny XML fragment (elements and the `s`
    /// attribute only, no text nodes).
    ///
    /// # Errors
    ///
    /// Returns [`ParseXmlError`](crate::ParseXmlError) on malformed input.
    pub fn parse_xml(input: &str) -> Result<Tree, crate::ParseXmlError> {
        xml::parse_tree(input)
    }
}

impl fmt::Debug for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_marked() {
            write!(f, "{}ˢ", self.label())?;
        } else {
            write!(f, "{}", self.label())?;
        }
        if !self.children().is_empty() {
            let mut dl = f.debug_list();
            for c in self.children() {
                dl.entry(c);
            }
            dl.finish()?;
        }
        Ok(())
    }
}

impl fmt::Display for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml())
    }
}

/// Convenience builder for trees in tests and examples.
///
/// # Example
///
/// ```
/// use ftree::TreeBuilder;
///
/// let t = TreeBuilder::new("root").child("a").child("b").build();
/// assert_eq!(t.children().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TreeBuilder {
    label: Label,
    marked: bool,
    children: Vec<Tree>,
}

impl TreeBuilder {
    /// Starts a builder for a node labelled `label`.
    pub fn new(label: impl Into<Label>) -> Self {
        TreeBuilder {
            label: label.into(),
            marked: false,
            children: Vec::new(),
        }
    }

    /// Adds a leaf child.
    #[must_use]
    pub fn child(mut self, label: impl Into<Label>) -> Self {
        self.children.push(Tree::leaf(label));
        self
    }

    /// Adds an already-built subtree as the next child.
    #[must_use]
    pub fn subtree(mut self, t: Tree) -> Self {
        self.children.push(t);
        self
    }

    /// Marks this node with the start mark.
    #[must_use]
    pub fn marked(mut self) -> Self {
        self.marked = true;
        self
    }

    /// Finishes the tree.
    pub fn build(self) -> Tree {
        Tree(Rc::new(TreeNode {
            label: self.label,
            marked: self.marked,
            children: self.children,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_and_height() {
        let t = Tree::node(
            "a",
            vec![Tree::leaf("b"), Tree::node("c", vec![Tree::leaf("d")])],
        );
        assert_eq!(t.size(), 4);
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn mark_placement() {
        let t = Tree::node("a", vec![Tree::leaf("b"), Tree::leaf("c")]);
        let m = t.mark_at(&[1]).unwrap();
        assert_eq!(m.mark_count(), 1);
        assert!(!m.is_marked());
        assert!(m.children()[1].is_marked());
        assert!(t.mark_at(&[5]).is_none());
    }

    #[test]
    fn mark_at_clears_previous_marks() {
        let t = Tree::node("a", vec![Tree::leaf("b")]);
        let m1 = t.mark_at(&[0]).unwrap();
        let m2 = m1.mark_at(&[]).unwrap();
        assert_eq!(m2.mark_count(), 1);
        assert!(m2.is_marked());
    }

    #[test]
    fn node_paths_in_document_order() {
        let t = Tree::node(
            "a",
            vec![Tree::node("b", vec![Tree::leaf("d")]), Tree::leaf("c")],
        );
        let paths = t.node_paths();
        assert_eq!(paths, vec![vec![], vec![0], vec![0, 0], vec![1]]);
    }

    #[test]
    fn structural_equality() {
        let t1 = Tree::node("a", vec![Tree::leaf("b")]);
        let t2 = Tree::node("a", vec![Tree::leaf("b")]);
        assert_eq!(t1, t2);
        assert_ne!(t1, t1.with_mark(true));
    }
}

//! Differential property tests: the denotational XPath interpreter (Fig 5)
//! and the Lµ translation (Figs 7/8/10) evaluated by the model checker
//! (Fig 2) must select exactly the same nodes on every tree.
//!
//! This is the executable form of Proposition 5.1(1).

use ftree::Tree;
use mulogic::{cycle_free, Logic, ModelChecker};
use proptest::prelude::*;
use xpath::ast::{Axis, Expr, NodeTest, Path, Qualifier};
use xpath::{compile_query, eval_on_tree};

const LABELS: [&str; 3] = ["a", "b", "c"];

fn arb_label() -> impl Strategy<Value = &'static str> {
    prop::sample::select(&LABELS[..])
}

fn arb_tree(max_depth: u32) -> impl Strategy<Value = Tree> {
    let leaf = arb_label().prop_map(Tree::leaf);
    leaf.prop_recursive(max_depth, 12, 3, |inner| {
        (arb_label(), prop::collection::vec(inner, 0..3)).prop_map(|(l, cs)| Tree::node(l, cs))
    })
}

/// A tree with exactly one mark, placed uniformly over the nodes.
fn arb_marked_tree() -> impl Strategy<Value = Tree> {
    (arb_tree(3), any::<prop::sample::Index>()).prop_map(|(t, ix)| {
        let paths = t.node_paths();
        let path = &paths[ix.index(paths.len())];
        t.mark_at(path).expect("path comes from node_paths")
    })
}

fn arb_axis() -> impl Strategy<Value = Axis> {
    prop::sample::select(&Axis::ALL[..])
}

fn arb_node_test() -> impl Strategy<Value = NodeTest> {
    prop_oneof![
        arb_label().prop_map(|l| NodeTest::Name(ftree::Label::new(l))),
        Just(NodeTest::Star),
    ]
}

fn arb_path(depth: u32) -> BoxedStrategy<Path> {
    let step = (arb_axis(), arb_node_test()).prop_map(|(a, t)| Path::Step(a, t));
    if depth == 0 {
        return step.boxed();
    }
    prop_oneof![
        4 => step,
        2 => (arb_path(depth - 1), arb_path(depth - 1))
            .prop_map(|(p, q)| p.then(q)),
        2 => (arb_path(depth - 1), arb_qualifier(depth - 1))
            .prop_map(|(p, q)| p.filter(q)),
        1 => (arb_path(depth - 1), arb_path(depth - 1))
            .prop_map(|(p, q)| Path::Union(Box::new(p), Box::new(q))),
    ]
    .boxed()
}

fn arb_qualifier(depth: u32) -> BoxedStrategy<Qualifier> {
    let leaf = arb_path(0).prop_map(|p| Qualifier::Path(Box::new(p)));
    if depth == 0 {
        return leaf.boxed();
    }
    prop_oneof![
        3 => arb_path(depth - 1).prop_map(|p| Qualifier::Path(Box::new(p))),
        1 => (arb_qualifier(depth - 1), arb_qualifier(depth - 1))
            .prop_map(|(a, b)| Qualifier::And(Box::new(a), Box::new(b))),
        1 => (arb_qualifier(depth - 1), arb_qualifier(depth - 1))
            .prop_map(|(a, b)| Qualifier::Or(Box::new(a), Box::new(b))),
        1 => arb_qualifier(depth - 1).prop_map(|q| Qualifier::Not(Box::new(q))),
    ]
    .boxed()
}

fn arb_expr() -> BoxedStrategy<Expr> {
    prop_oneof![
        4 => arb_path(2).prop_map(Expr::Relative),
        2 => arb_path(2).prop_map(Expr::Absolute),
        1 => (arb_path(1), arb_path(1)).prop_map(|(a, b)| Expr::Union(
            Box::new(Expr::Relative(a)),
            Box::new(Expr::Relative(b))
        )),
        1 => (arb_path(1), arb_path(1)).prop_map(|(a, b)| Expr::Intersect(
            Box::new(Expr::Relative(a)),
            Box::new(Expr::Relative(b))
        )),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Interpreter and translation agree node-for-node.
    #[test]
    fn translation_matches_interpreter(t in arb_marked_tree(), e in arb_expr()) {
        let picked = eval_on_tree(&e, &t);

        let mut lg = Logic::new();
        let f = compile_query(&mut lg, &e);
        let mc = ModelChecker::new(&t);
        let logical = mc.sat_foci(&lg, f);

        let mut a: Vec<String> = picked.iter().map(|f| format!("{f:?}")).collect();
        let mut b: Vec<String> = logical.iter().map(|f| format!("{f:?}")).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b, "query {} on {}", e, t.to_xml());
    }

    /// Every translation is cycle-free and closed (Proposition 5.1(2)).
    #[test]
    fn translation_cycle_free(e in arb_expr()) {
        let mut lg = Logic::new();
        let f = compile_query(&mut lg, &e);
        prop_assert!(lg.is_closed(f));
        prop_assert!(cycle_free(&lg, f), "not cycle-free: {}", e);
    }

    /// Normalization is semantics-preserving: the rewritten query selects
    /// exactly the same nodes on every tree.
    #[test]
    fn normalize_preserves_semantics(t in arb_marked_tree(), e in arb_expr()) {
        let n = xpath::normalize(&e);
        let mut before: Vec<String> =
            eval_on_tree(&e, &t).iter().map(|f| format!("{f:?}")).collect();
        let mut after: Vec<String> =
            eval_on_tree(&n, &t).iter().map(|f| format!("{f:?}")).collect();
        before.sort();
        after.sort();
        prop_assert_eq!(before, after, "{} vs {} on {}", e, n, t.to_xml());
    }

    /// Normalization is idempotent (it runs to a fixpoint), and grows a
    /// query by at most one AST node per rewritten `child::σ/parent::*`
    /// pattern (that rule trades a navigation step for a qualifier node).
    #[test]
    fn normalize_is_idempotent(e in arb_expr()) {
        let n = xpath::normalize(&e);
        prop_assert_eq!(xpath::normalize(&n), n.clone(), "{} -> {}", e, n);
        prop_assert!(n.size() <= 2 * e.size(), "{} -> {}", e, n);
    }

    /// Parsing the display form is the identity.
    #[test]
    fn parse_display_roundtrip(e in arb_expr()) {
        let shown = e.to_string();
        let reparsed = xpath::parse(&shown).unwrap();
        prop_assert_eq!(reparsed.to_string(), shown);
    }

    /// The normalized parse boundary is a fixpoint: pretty-printing a
    /// normalized expression and feeding it back through
    /// [`xpath::parse_normalized`] reproduces the same printed form.
    #[test]
    fn parse_normalized_is_a_fixpoint(e in arb_expr()) {
        let n = xpath::normalize(&e);
        let shown = n.to_string();
        let back = xpath::parse_normalized(&shown).unwrap();
        prop_assert_eq!(back.to_string(), shown);
    }

    /// Lint spans survive a print→reparse round trip: the spine steps (and
    /// predicate sites) of the reparsed expression match the original's.
    #[test]
    fn decomposition_survives_roundtrip(e in arb_expr()) {
        let n = xpath::normalize(&e);
        let back = xpath::parse_normalized(&n.to_string()).unwrap();
        prop_assert_eq!(
            xpath::decompose::steps(&back),
            xpath::decompose::steps(&n),
            "spine drift for {}", n
        );
        prop_assert_eq!(
            xpath::decompose::predicate_sites(&back),
            xpath::decompose::predicate_sites(&n),
            "site drift for {}", n
        );
    }
}

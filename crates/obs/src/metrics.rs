//! Process-wide metrics: atomic counters, gauges and latency histograms.
//!
//! Metric handles are `Arc`-backed and lock-free to update; the registry
//! mutex is touched only on first registration of a (name, labels) pair
//! and when taking a snapshot. Names and label values are `&'static str`,
//! which keeps registration allocation-light and rules out cardinality
//! explosions from user-controlled strings.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Upper bounds (milliseconds) of the fixed histogram buckets; a final
/// `+Inf` bucket is implicit. Chosen to straddle the paper's reported
/// solve times (tens of milliseconds) with headroom for pathological runs.
pub const BUCKET_BOUNDS_MS: [f64; 14] = [
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0, 5000.0,
];

/// Monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Settable gauge (also usable as a high-water mark via [`Gauge::record_max`]).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Increase by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrease by `n`, saturating at zero.
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Raise the value to `v` if it is larger than the current one.
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct HistogramInner {
    /// One slot per bound in [`BUCKET_BOUNDS_MS`] plus the `+Inf` slot.
    buckets: [AtomicU64; BUCKET_BOUNDS_MS.len() + 1],
    /// Sum of observations in microseconds (kept integral for atomicity).
    sum_us: AtomicU64,
    count: AtomicU64,
}

/// Fixed-bucket latency histogram, observed in milliseconds.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Record one observation of `ms` milliseconds.
    pub fn observe_ms(&self, ms: f64) {
        let ms = if ms.is_finite() && ms >= 0.0 { ms } else { 0.0 };
        let idx = BUCKET_BOUNDS_MS
            .iter()
            .position(|&b| ms <= b)
            .unwrap_or(BUCKET_BOUNDS_MS.len());
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0
            .sum_us
            .fetch_add((ms * 1000.0).round() as u64, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations, in milliseconds.
    pub fn sum_ms(&self) -> f64 {
        self.0.sum_us.load(Ordering::Relaxed) as f64 / 1000.0
    }

    /// Non-cumulative per-bucket counts, `+Inf` last.
    fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

#[derive(Debug, Clone)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

type Labels = Vec<(&'static str, &'static str)>;

/// The value part of a [`Snapshot`] row.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram totals plus per-bucket cumulative counts keyed by the
    /// bucket's upper bound in milliseconds (`f64::INFINITY` last).
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of observations in milliseconds.
        sum_ms: f64,
        /// `(upper_bound_ms, cumulative_count)` pairs.
        buckets: Vec<(f64, u64)>,
    },
}

/// One (metric, labels) row of a registry snapshot.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Metric name, e.g. `xsat_solves_total`.
    pub name: &'static str,
    /// Label pairs in registration order.
    pub labels: Labels,
    /// Current value.
    pub value: MetricValue,
}

/// A collection of named metrics. Most code uses the process-wide
/// instance behind [`metrics()`]; tests may build private registries.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<(&'static str, Labels), Slot>>,
}

impl Registry {
    /// Fresh empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn slot(
        &self,
        name: &'static str,
        labels: &[(&'static str, &'static str)],
        make: Slot,
    ) -> Slot {
        let key = (name, labels.to_vec());
        let mut map = match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        let slot = map.entry(key).or_insert(make);
        slot.clone()
    }

    /// Get or register the counter `name{labels}`.
    ///
    /// # Panics
    /// If the same (name, labels) pair was registered with another kind.
    pub fn counter(&self, name: &'static str, labels: &[(&'static str, &'static str)]) -> Counter {
        match self.slot(name, labels, Slot::Counter(Counter::default())) {
            Slot::Counter(c) => c,
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Get or register the gauge `name{labels}`.
    ///
    /// # Panics
    /// If the same (name, labels) pair was registered with another kind.
    pub fn gauge(&self, name: &'static str, labels: &[(&'static str, &'static str)]) -> Gauge {
        match self.slot(name, labels, Slot::Gauge(Gauge::default())) {
            Slot::Gauge(g) => g,
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Get or register the histogram `name{labels}`.
    ///
    /// # Panics
    /// If the same (name, labels) pair was registered with another kind.
    pub fn histogram(
        &self,
        name: &'static str,
        labels: &[(&'static str, &'static str)],
    ) -> Histogram {
        match self.slot(name, labels, Slot::Histogram(Histogram::default())) {
            Slot::Histogram(h) => h,
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Point-in-time view of every registered metric, sorted by
    /// (name, labels) for deterministic output.
    pub fn snapshot(&self) -> Vec<Snapshot> {
        let map = match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        map.iter()
            .map(|((name, labels), slot)| Snapshot {
                name,
                labels: labels.clone(),
                value: match slot {
                    Slot::Counter(c) => MetricValue::Counter(c.get()),
                    Slot::Gauge(g) => MetricValue::Gauge(g.get()),
                    Slot::Histogram(h) => {
                        let counts = h.bucket_counts();
                        let mut cumulative = 0;
                        let mut buckets = Vec::with_capacity(counts.len());
                        for (i, c) in counts.iter().enumerate() {
                            cumulative += c;
                            let bound = BUCKET_BOUNDS_MS.get(i).copied().unwrap_or(f64::INFINITY);
                            buckets.push((bound, cumulative));
                        }
                        MetricValue::Histogram {
                            count: h.count(),
                            sum_ms: h.sum_ms(),
                            buckets,
                        }
                    }
                },
            })
            .collect()
    }

    /// Render the registry in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let rows = self.snapshot();
        let mut out = String::new();
        let mut last_name = "";
        for row in &rows {
            if row.name != last_name {
                let kind = match row.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram { .. } => "histogram",
                };
                out.push_str(&format!("# TYPE {} {}\n", row.name, kind));
                last_name = row.name;
            }
            match &row.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    out.push_str(row.name);
                    out.push_str(&label_set(&row.labels, None));
                    out.push_str(&format!(" {v}\n"));
                }
                MetricValue::Histogram {
                    count,
                    sum_ms,
                    buckets,
                } => {
                    for (bound, cumulative) in buckets {
                        let le = if bound.is_finite() {
                            format!("{bound}")
                        } else {
                            "+Inf".to_string()
                        };
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            row.name,
                            label_set(&row.labels, Some(&le)),
                            cumulative
                        ));
                    }
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        row.name,
                        label_set(&row.labels, None),
                        sum_ms
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        row.name,
                        label_set(&row.labels, None),
                        count
                    ));
                }
            }
        }
        out
    }
}

fn label_set(labels: &Labels, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry shared by the solver engine, executor and CLI.
pub fn metrics() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("xsat_test_total", &[("op", "contains")]);
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        // Same key returns the same underlying atomic.
        assert_eq!(
            reg.counter("xsat_test_total", &[("op", "contains")]).get(),
            3
        );
        // Different labels are a different series.
        assert_eq!(
            reg.counter("xsat_test_total", &[("op", "overlap")]).get(),
            0
        );

        let g = reg.gauge("xsat_test_depth", &[]);
        g.set(5);
        g.add(2);
        g.sub(3);
        assert_eq!(g.get(), 4);
        g.sub(100);
        assert_eq!(g.get(), 0, "sub saturates");
        g.record_max(7);
        g.record_max(2);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_snapshot() {
        let reg = Registry::new();
        let h = reg.histogram("xsat_test_ms", &[("backend", "symbolic")]);
        h.observe_ms(0.04); // first bucket (<= 0.05)
        h.observe_ms(0.6); // <= 1.0
        h.observe_ms(1e9); // +Inf
        assert_eq!(h.count(), 3);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        let MetricValue::Histogram { count, buckets, .. } = &snap[0].value else {
            panic!("expected histogram");
        };
        assert_eq!(*count, 3);
        assert_eq!(buckets.last().unwrap().1, 3, "+Inf bucket counts all");
        assert!(buckets.windows(2).all(|w| w[0].1 <= w[1].1), "cumulative");
        assert_eq!(buckets[0].1, 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflicts_panic() {
        let reg = Registry::new();
        let _ = reg.counter("xsat_conflict", &[]);
        let _ = reg.gauge("xsat_conflict", &[]);
    }

    #[test]
    fn prometheus_rendering_is_sorted_and_typed() {
        let reg = Registry::new();
        reg.counter("xsat_b_total", &[("op", "sat")]).add(2);
        reg.counter("xsat_b_total", &[("op", "empty")]).inc();
        reg.gauge("xsat_a_depth", &[]).set(4);
        reg.histogram("xsat_c_ms", &[]).observe_ms(0.2);
        let text = reg.render_prometheus();
        let a = text.find("# TYPE xsat_a_depth gauge").unwrap();
        let b = text.find("# TYPE xsat_b_total counter").unwrap();
        let c = text.find("# TYPE xsat_c_ms histogram").unwrap();
        assert!(a < b && b < c, "sorted by metric name");
        assert!(text.contains("xsat_a_depth 4"));
        assert!(text.contains("xsat_b_total{op=\"empty\"} 1"));
        assert!(text.contains("xsat_b_total{op=\"sat\"} 2"));
        assert!(text.contains("xsat_c_ms_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("xsat_c_ms_sum 0.2"));
        assert!(text.contains("xsat_c_ms_count 1"));
        assert_eq!(
            text.matches("# TYPE xsat_b_total").count(),
            1,
            "one TYPE line per metric family"
        );
    }

    #[test]
    fn global_registry_is_shared() {
        metrics().counter("xsat_global_probe_total", &[]).inc();
        let snap = metrics().snapshot();
        assert!(snap.iter().any(|s| s.name == "xsat_global_probe_total"));
    }
}

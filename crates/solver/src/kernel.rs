//! The shared solver kernel: one fixpoint driver, pluggable backends,
//! resource-governed runs.
//!
//! The paper presents the explicit (§6.2) and symbolic (§7) satisfiability
//! algorithms as two implementations of *one* bottom-up fixpoint over
//! ψ-types. This module captures that shape as the [`Backend`] trait — the
//! type-set representation, one `Upd` step, the root check, and the
//! per-iteration snapshots driving minimal-model reconstruction — and the
//! generic [`run_fixpoint`] driver that owns the iteration loop, the
//! termination test, the statistics, and the budget checks: every `Upd`
//! step is gated on the caller's [`Limits`] (wall-clock deadline, fixpoint
//! iteration cap), and a backend can abort a step from the inside (the
//! symbolic backend polls its BDD node budget between relational-product
//! clauses). `solve_explicit`, `solve_symbolic` and `solve_witnessed` are
//! thin wrappers that build a backend and hand it to the driver; future
//! backends (relevance-filtered, sharded, …) plug into the same seam.
//!
//! [`BackendChoice`] is the end-to-end selection type threaded from the
//! `xsat --backend` flag through the engine protocol and the analyzer down
//! to [`solve_with`], including the [`BackendChoice::Dual`] cross-check
//! mode that runs the symbolic and explicit backends concurrently and
//! reports any verdict disagreement as an error, and the
//! [`BackendChoice::Portfolio`] mode that races every feasible backend
//! under one shared deadline with cooperative cancellation and returns
//! the first verdict (see the `portfolio` module).

use std::fmt;
use std::str::FromStr;
use std::time::Instant;

use mulogic::{Formula, Logic};
use obs::{FieldValue, Recorder};

use crate::limits::{Exhausted, Limits, Resource};
use crate::outcome::{Model, Outcome, Solved, Stats, Telemetry};
use crate::prepare::Prepared;
use crate::symbolic::SymbolicOptions;

/// One backend of the satisfiability fixpoint.
///
/// A backend owns its representation of the proved type sets (bit-vector
/// enumerations, BDDs, witness maps, …) plus whatever per-iteration
/// snapshots its model reconstruction needs. The generic [`run_fixpoint`]
/// driver supplies the loop: step, check, repeat until a root hit or a
/// fixed point — aborting when a budget runs out.
pub trait Backend {
    /// Evidence of a root hit, carrying whatever the backend needs to
    /// reconstruct a model (a type index, a satisfying set BDD, a witness
    /// path, …).
    type Hit;

    /// Performs one `Upd` iteration (Fig 16), recording a snapshot for the
    /// later reconstruction. Returns whether the proved sets grew, or the
    /// budget hit that aborted the step (backends with mid-step poll
    /// points — the symbolic relational-product fold — report node-budget
    /// and deadline exhaustion from here; the driver's own per-step checks
    /// cover backends that never err).
    fn step(&mut self) -> Result<bool, Exhausted>;

    /// The root check on the current sets: for the plunging backends the
    /// `ψ`-filter on types with no pending backward modality (§7.1); for
    /// the witnessed backend the literal `FinalCheck`/`dsat` search.
    fn check(&mut self) -> Option<Self::Hit>;

    /// Rebuilds a minimal satisfying model from the recorded snapshots
    /// (§7.2).
    fn reconstruct(&mut self, hit: Self::Hit) -> Model;

    /// Backend-specific measurements (BDD node counts, enumerated types,
    /// …), snapshotted when the run finishes.
    fn telemetry(&self) -> Telemetry;

    /// A cheap point-in-time measurement of the backend's state, taken by
    /// the traced driver after every `step` to build the per-iteration
    /// `step` trace events. Only called when a trace [`Recorder`] is
    /// enabled, so backends may do modest work (a set-size walk) here.
    /// The default reports nothing — a backend without instrumentation
    /// still works under tracing.
    fn observe(&self) -> StepObservation {
        StepObservation::default()
    }
}

/// What one fixpoint iteration looked like from the outside — the raw
/// material of the `step` trace events. The driver turns consecutive
/// observations into deltas (node growth, frontier size, incremental cache
/// hit rate).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepObservation {
    /// Live size of the backend's representation: arena nodes for the
    /// symbolic backend, enumerated type count for the explicit ones.
    pub store_nodes: u64,
    /// Cumulative size of the proved sets (`T° ∪ T•` cardinality / proved
    /// triples). Monotone over a run; the driver derives the per-iteration
    /// frontier from its deltas.
    pub proved: u64,
    /// Operation-cache hits so far (symbolic backend only).
    pub cache_hits: u64,
    /// Operation-cache lookups so far (symbolic backend only).
    pub cache_lookups: u64,
}

/// Emits a `limit` trace event for a budget hit.
pub(crate) fn limit_event(rec: &Recorder, e: &Exhausted) {
    rec.event(
        "limit",
        &[
            ("resource", FieldValue::Str(e.resource.as_str())),
            ("spent", FieldValue::U64(e.spent)),
            ("limit", FieldValue::U64(e.limit)),
        ],
    );
}

/// Runs a backend to its fixpoint and packages the verdict.
///
/// The loop is the paper's: iterate `Upd` from the empty sets, checking
/// after every step whether a root type (marked when the goal mentions the
/// start proposition) passes the final check; stop on the first hit or as
/// soon as an iteration adds nothing. Before every step the driver checks
/// the caller's [`Limits`] — the wall-clock deadline and the iteration
/// cap — and a budget hit aborts the run with
/// [`SolveError::ResourceExhausted`] instead of a verdict. `lean_size` and
/// `closure_size` are carried into [`Stats`] verbatim.
///
/// # Example
///
/// A miniature backend: "is `n` reachable by doubling from 1?", with the
/// proved set standing in for the paper's ψ-type sets.
///
/// ```
/// use solver::{run_fixpoint, Backend, Exhausted, Limits, Model, Telemetry};
///
/// struct Doubling { proved: Vec<u64>, target: u64 }
///
/// impl Backend for Doubling {
///     type Hit = u64;
///     fn step(&mut self) -> Result<bool, Exhausted> {
///         let next = self.proved.last().copied().unwrap_or(1).wrapping_mul(2);
///         if self.proved.contains(&next) || next > self.target {
///             return Ok(false); // fixpoint reached
///         }
///         self.proved.push(next);
///         Ok(true)
///     }
///     fn check(&mut self) -> Option<u64> {
///         self.proved.contains(&self.target).then_some(self.target)
///     }
///     fn reconstruct(&mut self, _hit: u64) -> Model {
///         unreachable!("example never reconstructs")
///     }
///     fn telemetry(&self) -> Telemetry {
///         Telemetry::Explicit { types: self.proved.len() }
///     }
/// }
///
/// let backend = Doubling { proved: vec![1], target: 9 };
/// let solved = run_fixpoint(backend, 0, 0, &Limits::none()).unwrap();
/// assert!(!solved.outcome.is_satisfiable()); // 9 is not a power of two
/// assert!(solved.stats.iterations >= 3);
///
/// // The same run under a one-iteration cap exhausts instead.
/// let backend = Doubling { proved: vec![1], target: 9 };
/// let capped = Limits { max_iterations: Some(1), ..Limits::none() };
/// assert!(run_fixpoint(backend, 0, 0, &capped).is_err());
/// ```
pub fn run_fixpoint<B: Backend>(
    backend: B,
    lean_size: usize,
    closure_size: usize,
    limits: &Limits,
) -> Result<Solved, SolveError> {
    run_fixpoint_traced(backend, lean_size, closure_size, limits, &Recorder::noop())
}

/// [`run_fixpoint`] with trace recording: when `rec` is enabled, every
/// iteration emits a `step` event (iteration number, representation growth,
/// frontier size, operation-cache hit rate from [`Backend::observe`]) and
/// every budget hit emits a `limit` event before the error propagates. The
/// whole loop runs under a `fixpoint` phase span. With the noop recorder
/// this is exactly `run_fixpoint` — the observation calls are skipped.
pub fn run_fixpoint_traced<B: Backend>(
    mut backend: B,
    lean_size: usize,
    closure_size: usize,
    limits: &Limits,
    rec: &Recorder,
) -> Result<Solved, SolveError> {
    let t0 = Instant::now();
    let span = rec.span("fixpoint");
    let mut iterations = 0usize;
    let mut prev = StepObservation::default();
    let hit = loop {
        if let Some(cap) = limits.max_iterations {
            if iterations >= cap {
                let e = Exhausted {
                    resource: Resource::Iterations,
                    spent: iterations as u64,
                    limit: cap as u64,
                };
                limit_event(rec, &e);
                return Err(e.into());
            }
        }
        if let Some(deadline) = limits.deadline {
            let elapsed = t0.elapsed();
            if elapsed >= deadline {
                let e = Exhausted::wall_clock(elapsed, deadline);
                limit_event(rec, &e);
                return Err(e.into());
            }
        }
        // Cooperative cancellation, polled alongside the deadline: when a
        // portfolio sibling already won the race, abort before the next
        // `Upd` step instead of computing sets nobody will read.
        if limits.cancel.is_cancelled() {
            let e = Exhausted::cancelled(t0.elapsed());
            limit_event(rec, &e);
            return Err(e.into());
        }
        iterations += 1;
        let step_started = rec.enabled().then(Instant::now);
        let changed = match backend.step() {
            Ok(changed) => changed,
            Err(e) => {
                limit_event(rec, &e);
                return Err(e.into());
            }
        };
        if let Some(started) = step_started {
            let o = backend.observe();
            let hits = o.cache_hits.saturating_sub(prev.cache_hits);
            let lookups = o.cache_lookups.saturating_sub(prev.cache_lookups);
            let rate = if lookups > 0 {
                hits as f64 / lookups as f64
            } else {
                0.0
            };
            rec.event(
                "step",
                &[
                    ("iter", FieldValue::U64(iterations as u64)),
                    ("changed", FieldValue::Bool(changed)),
                    ("nodes", FieldValue::U64(o.store_nodes)),
                    (
                        "nodes_delta",
                        FieldValue::I64(o.store_nodes as i64 - prev.store_nodes as i64),
                    ),
                    ("proved", FieldValue::U64(o.proved)),
                    (
                        "frontier",
                        FieldValue::U64(o.proved.saturating_sub(prev.proved)),
                    ),
                    ("cache_hit_rate", FieldValue::F64(rate)),
                    (
                        "dt_us",
                        FieldValue::U64(started.elapsed().as_micros() as u64),
                    ),
                ],
            );
            prev = o;
        }
        if let Some(hit) = backend.check() {
            break Some(hit);
        }
        if !changed {
            break None;
        }
    };
    drop(span);
    let outcome = match hit {
        None => Outcome::Unsatisfiable,
        Some(hit) => Outcome::Satisfiable(backend.reconstruct(hit)),
    };
    Ok(Solved {
        outcome,
        stats: Stats {
            lean_size,
            closure_size,
            iterations,
            duration: t0.elapsed(),
            telemetry: backend.telemetry(),
        },
    })
}

/// End-to-end backend selection: which solver answers a satisfiability
/// query. Threaded from the `xsat --backend` flag through the engine's
/// JSONL protocol and the analyzer options down to [`solve_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendChoice {
    /// The BDD-based production algorithm of §7 (the default).
    #[default]
    Symbolic,
    /// The enumerated reference algorithm of §6.2.
    Explicit,
    /// The literal Fig 16 algorithm with explicit witness sets.
    Witnessed,
    /// Cross-check: run [`Symbolic`](BackendChoice::Symbolic) and
    /// [`Explicit`](BackendChoice::Explicit) concurrently and fail loudly
    /// on any verdict disagreement. The recommended CI configuration.
    Dual,
    /// Race every feasible backend on worker threads under one shared
    /// deadline with cooperative cancellation; the first verdict wins and
    /// cancels the rest. Latency tracks the fastest backend instead of a
    /// fixed choice.
    Portfolio,
}

impl BackendChoice {
    /// Every choice, in protocol order.
    pub const ALL: [BackendChoice; 5] = [
        BackendChoice::Symbolic,
        BackendChoice::Explicit,
        BackendChoice::Witnessed,
        BackendChoice::Dual,
        BackendChoice::Portfolio,
    ];

    /// The protocol/CLI name of the choice.
    pub fn as_str(self) -> &'static str {
        match self {
            BackendChoice::Symbolic => "symbolic",
            BackendChoice::Explicit => "explicit",
            BackendChoice::Witnessed => "witnessed",
            BackendChoice::Dual => "dual",
            BackendChoice::Portfolio => "portfolio",
        }
    }
}

impl fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for BackendChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<BackendChoice, String> {
        BackendChoice::ALL
            .into_iter()
            .find(|b| b.as_str() == s)
            .ok_or_else(|| {
                format!(
                    "unknown backend `{s}` (expected symbolic, explicit, witnessed, dual or portfolio)"
                )
            })
    }
}

/// Why a solve could not produce a verdict.
///
/// Three very different situations share this type, and callers are
/// expected to treat them differently:
///
/// * [`Disagreement`](SolveError::Disagreement) is a solver bug — the dual
///   cross-check caught the backends contradicting each other. Fail
///   loudly.
/// * [`WitnessInvalid`](SolveError::WitnessInvalid) is also a solver bug:
///   a reconstructed model failed the semantic oracle
///   (`mulogic::model_check`) or DTD re-validation. A wrong witness must
///   never be served as a silent `fails` verdict.
/// * [`ResourceExhausted`](SolveError::ResourceExhausted) is the *third
///   verdict*: a budget of the caller's [`Limits`] ran out before the
///   fixpoint finished. The property is neither proved nor refuted; the
///   engine protocol reports it as `"status":"unknown"` and never caches
///   it, so a retry with bigger limits re-solves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The two cross-checked backends returned different verdicts — a
    /// solver bug, worth a loud failure.
    Disagreement {
        /// The symbolic backend's satisfiability verdict.
        symbolic_sat: bool,
        /// The explicit backend's satisfiability verdict.
        explicit_sat: bool,
        /// Display form of the goal formula.
        formula: String,
    },
    /// A reconstructed witness failed its independent re-check: the
    /// model-checking oracle rejected it against the goal formula, or the
    /// document is invalid against its governing DTD. Like
    /// [`Disagreement`](SolveError::Disagreement), this is a solver bug
    /// surfaced loudly instead of an unsound verdict.
    WitnessInvalid {
        /// Display form of the goal formula the witness was checked
        /// against.
        formula: String,
        /// What the oracle rejected (`model_check refuted the witness`,
        /// `witness invalid against the DTD`, ...).
        reason: String,
        /// Compact XML of the rejected witness document.
        witness: String,
    },
    /// A resource budget ran out before the run could decide. Subsumes the
    /// old bespoke "explicit enumeration infeasible" error: a lean beyond
    /// [`Limits::max_lean_diamonds`] is reported as an exhaustion of
    /// [`Resource::LeanDiamonds`].
    ResourceExhausted {
        /// The resource that ran out.
        resource: Resource,
        /// How much was spent when the check fired (the resource's natural
        /// unit: milliseconds for wall clock, counts otherwise).
        spent: u64,
        /// The configured budget.
        limit: u64,
    },
}

/// The pre-resource-governance name of [`SolveError`], kept for downstream
/// code written against the v1 API.
pub type CrossCheckError = SolveError;

impl SolveError {
    /// The exhaustion report, when this is a budget hit.
    pub fn exhausted(&self) -> Option<Exhausted> {
        match *self {
            SolveError::ResourceExhausted {
                resource,
                spent,
                limit,
            } => Some(Exhausted {
                resource,
                spent,
                limit,
            }),
            SolveError::Disagreement { .. } | SolveError::WitnessInvalid { .. } => None,
        }
    }
}

impl From<Exhausted> for SolveError {
    fn from(e: Exhausted) -> SolveError {
        SolveError::ResourceExhausted {
            resource: e.resource,
            spent: e.spent,
            limit: e.limit,
        }
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Disagreement {
                symbolic_sat,
                explicit_sat,
                formula,
            } => write!(
                f,
                "backend disagreement on `{formula}`: symbolic says {}, explicit says {}",
                verdict_name(*symbolic_sat),
                verdict_name(*explicit_sat)
            ),
            SolveError::WitnessInvalid {
                formula,
                reason,
                witness,
            } => write!(
                f,
                "invalid witness for `{formula}`: {reason} (witness: {witness})"
            ),
            SolveError::ResourceExhausted { .. } => {
                write!(f, "{}", self.exhausted().expect("exhausted variant"))
            }
        }
    }
}

impl std::error::Error for SolveError {}

fn verdict_name(sat: bool) -> &'static str {
    if sat {
        "satisfiable"
    } else {
        "unsatisfiable"
    }
}

/// Decides satisfiability on the chosen backend under the given limits.
///
/// The symbolic backend exhausts only when a deadline, node budget or
/// iteration cap is set. The enumerating backends (explicit, witnessed)
/// additionally return a [`Resource::LeanDiamonds`] exhaustion — instead
/// of panicking like their direct `solve_*` wrappers — when the lean
/// exceeds [`Limits::max_lean_diamonds`], so a service front end can turn
/// an oversized request into an `unknown` verdict.
/// [`BackendChoice::Dual`] runs the symbolic solver on this thread and the
/// explicit solver concurrently on a clone of the arena (both governed by
/// the same limits), errors when the two verdicts differ, and otherwise
/// returns the symbolic model with combined telemetry.
pub fn solve_with(
    lg: &mut Logic,
    goal: Formula,
    backend: BackendChoice,
    opts: &SymbolicOptions,
    limits: &Limits,
) -> Result<Solved, SolveError> {
    let mut bdd = bdd::Bdd::new();
    solve_with_in(lg, goal, backend, opts, &mut bdd, limits)
}

/// [`solve_with`] inside a caller-owned BDD manager.
///
/// The symbolic backend (and the symbolic half of dual mode) runs in
/// `mgr`, which is reset — not reallocated — per problem (see
/// [`solve_symbolic_in`](crate::solve_symbolic_in)); the enumerating
/// backends ignore it. Long-lived workers hold one manager and thread it
/// through every call.
pub fn solve_with_in(
    lg: &mut Logic,
    goal: Formula,
    backend: BackendChoice,
    opts: &SymbolicOptions,
    mgr: &mut bdd::Bdd,
    limits: &Limits,
) -> Result<Solved, SolveError> {
    solve_with_traced(lg, goal, backend, opts, mgr, limits, &Recorder::noop())
}

/// [`solve_with_in`] with trace recording: phase spans (lean construction,
/// backend build, fixpoint), per-iteration `step` events and `limit`
/// events flow into `rec`. The noop recorder makes this identical to
/// `solve_with_in`.
pub fn solve_with_traced(
    lg: &mut Logic,
    goal: Formula,
    backend: BackendChoice,
    opts: &SymbolicOptions,
    mgr: &mut bdd::Bdd,
    limits: &Limits,
    rec: &Recorder,
) -> Result<Solved, SolveError> {
    match backend {
        BackendChoice::Symbolic => crate::solve_symbolic_traced(lg, goal, opts, mgr, limits, rec),
        BackendChoice::Explicit => {
            let prep = {
                let _span = rec.span("lean");
                Prepared::new(lg, goal)
            };
            feasible_traced(prep.lean.diam_entries().count(), limits, rec)?;
            crate::explicit::solve_prepared(lg, prep, limits, rec)
        }
        BackendChoice::Witnessed => {
            feasible_traced(crate::witnessed::lean_diamonds(lg, goal), limits, rec)?;
            crate::witnessed::solve_witnessed_bounded(lg, goal, limits, rec)
        }
        BackendChoice::Dual => crate::portfolio::solve_dual(lg, goal, opts, mgr, limits, rec),
        BackendChoice::Portfolio => {
            crate::portfolio::solve_portfolio(lg, goal, opts, mgr, limits, rec)
        }
    }
}

/// [`enumeration_feasible`] plus a `limit` trace event on rejection.
pub(crate) fn feasible_traced(
    diamonds: usize,
    limits: &Limits,
    rec: &Recorder,
) -> Result<(), SolveError> {
    enumeration_feasible(diamonds, limits).inspect_err(|e| {
        if let Some(ex) = e.exhausted() {
            limit_event(rec, &ex);
        }
    })
}

/// Errs when a lean is too large for the caller's enumeration cap. The
/// cap is clamped to the enumerator's representation limit, so a wire
/// request raising `max_lean` arbitrarily high can never push an
/// oversized lean into the enumerator's panic path.
pub(crate) fn enumeration_feasible(diamonds: usize, limits: &Limits) -> Result<(), SolveError> {
    let cap = limits
        .max_lean_diamonds
        .min(crate::bits::ENUMERATION_HARD_CAP);
    if diamonds > cap {
        return Err(SolveError::ResourceExhausted {
            resource: Resource::LeanDiamonds,
            spent: diamonds as u64,
            limit: cap as u64,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn choice_round_trips_through_names() {
        for b in BackendChoice::ALL {
            assert_eq!(b.as_str().parse::<BackendChoice>().unwrap(), b);
        }
        let err = "frobnicate".parse::<BackendChoice>().unwrap_err();
        assert!(err.contains("unknown backend `frobnicate`"), "{err}");
        assert_eq!(BackendChoice::default(), BackendChoice::Symbolic);
    }

    #[test]
    fn solve_with_dispatches_every_backend() {
        for b in BackendChoice::ALL {
            let mut lg = Logic::new();
            let sat = lg.parse("a & <1>b").unwrap();
            let s = solve_with(
                &mut lg,
                sat,
                b,
                &SymbolicOptions::default(),
                &Limits::default(),
            )
            .unwrap();
            assert!(s.outcome.is_satisfiable(), "{b}");
            let mut lg = Logic::new();
            let unsat = lg.parse("a & ~a").unwrap();
            let s = solve_with(
                &mut lg,
                unsat,
                b,
                &SymbolicOptions::default(),
                &Limits::default(),
            )
            .unwrap();
            assert!(!s.outcome.is_satisfiable(), "{b}");
        }
    }

    #[test]
    fn dual_reports_combined_telemetry() {
        let mut lg = Logic::new();
        let goal = lg.parse("a & <1>(b & <2>c)").unwrap();
        let s = solve_with(
            &mut lg,
            goal,
            BackendChoice::Dual,
            &SymbolicOptions::default(),
            &Limits::default(),
        )
        .unwrap();
        match &s.stats.telemetry {
            Telemetry::Dual {
                symbolic,
                explicit,
                symbolic_iterations,
                explicit_iterations,
            } => {
                assert!(symbolic.bdd_nodes().unwrap() > 0);
                assert!(explicit.explicit_types().unwrap() > 0);
                // The drivers' counts are reported distinctly, and the
                // top-level stat is the symbolic driver's alone — not the
                // sum that used to double-count.
                assert_eq!(s.stats.iterations, *symbolic_iterations);
                assert!(*explicit_iterations > 0);
            }
            other => panic!("expected dual telemetry, got {other:?}"),
        }
    }

    #[test]
    fn portfolio_reports_winner_telemetry() {
        let mut lg = Logic::new();
        let goal = lg.parse("a & <1>(b & <2>c)").unwrap();
        let s = solve_with(
            &mut lg,
            goal,
            BackendChoice::Portfolio,
            &SymbolicOptions::default(),
            &Limits::default(),
        )
        .unwrap();
        assert!(s.outcome.is_satisfiable());
        match &s.stats.telemetry {
            Telemetry::Portfolio {
                winner,
                raced,
                inner,
            } => {
                assert!(raced.contains(winner), "{winner} not in {raced:?}");
                assert!(raced.contains(&"symbolic"));
                assert_eq!(inner.backend_name(), *winner);
            }
            other => panic!("expected portfolio telemetry, got {other:?}"),
        }
    }

    #[test]
    fn portfolio_degrades_to_symbolic_on_oversized_leans() {
        // When the lean is too large for the enumerating racers, the
        // portfolio must still answer — racing only the symbolic backend —
        // instead of reporting the enumeration as exhausted.
        let mut lg = Logic::new();
        let src: Vec<String> = (0..18).map(|i| format!("<1><2>l{i}")).collect();
        let goal = lg.parse(&src.join(" | ")).unwrap();
        let s = solve_with(
            &mut lg,
            goal,
            BackendChoice::Portfolio,
            &SymbolicOptions::default(),
            &Limits::default(),
        )
        .unwrap();
        assert!(s.outcome.is_satisfiable());
        match &s.stats.telemetry {
            Telemetry::Portfolio { winner, raced, .. } => {
                assert_eq!(*winner, "symbolic");
                assert_eq!(raced, &vec!["symbolic"]);
            }
            other => panic!("expected portfolio telemetry, got {other:?}"),
        }
    }

    #[test]
    fn enumerating_backends_reject_oversized_leans() {
        // A disjunction of many distinct diamonds blows past the default
        // lean-diamond cap; every enumerating choice must report the
        // budget as exhausted — not panic (which would kill a serving
        // engine) and not hang.
        for backend in [
            BackendChoice::Explicit,
            BackendChoice::Witnessed,
            BackendChoice::Dual,
        ] {
            let mut lg = Logic::new();
            let src: Vec<String> = (0..18).map(|i| format!("<1><2>l{i}")).collect();
            let goal = lg.parse(&src.join(" | ")).unwrap();
            let err = solve_with(
                &mut lg,
                goal,
                backend,
                &SymbolicOptions::default(),
                &Limits::default(),
            )
            .unwrap_err();
            match err {
                SolveError::ResourceExhausted {
                    resource: Resource::LeanDiamonds,
                    spent,
                    limit,
                } => {
                    assert!(spent > limit, "{backend}: {spent} vs {limit}");
                }
                other => panic!("{backend}: expected lean exhaustion, got {other}"),
            }
        }
    }

    #[test]
    fn raised_lean_cap_is_clamped_to_the_representation_limit() {
        // A wire request may set max_lean far past the enumerator's u32
        // mask limit; the feasibility check must clamp — returning a
        // typed exhaustion against the clamped cap — instead of letting
        // the oversized lean reach the enumerator's panic path.
        for backend in [
            BackendChoice::Explicit,
            BackendChoice::Witnessed,
            BackendChoice::Dual,
        ] {
            let mut lg = Logic::new();
            let src: Vec<String> = (0..18).map(|i| format!("<1><2>l{i}")).collect();
            let goal = lg.parse(&src.join(" | ")).unwrap();
            let limits = Limits {
                max_lean_diamonds: 1_000_000,
                ..Limits::default()
            };
            let err = solve_with(&mut lg, goal, backend, &SymbolicOptions::default(), &limits)
                .unwrap_err();
            match err {
                SolveError::ResourceExhausted {
                    resource: Resource::LeanDiamonds,
                    spent,
                    limit,
                } => {
                    assert_eq!(limit, 26, "{backend}");
                    assert!(spent > limit, "{backend}: {spent} vs {limit}");
                }
                other => panic!("{backend}: expected lean exhaustion, got {other}"),
            }
        }
    }

    #[test]
    fn iteration_cap_reports_exhaustion_on_every_backend() {
        // A deep chain needs several Upd iterations; a one-iteration cap
        // must surface as a typed exhaustion, never a wrong verdict.
        for backend in BackendChoice::ALL {
            let mut lg = Logic::new();
            let goal = lg.parse("a & <1>(b & <1>(c & <1>d))").unwrap();
            let limits = Limits {
                max_iterations: Some(1),
                ..Limits::default()
            };
            let err = solve_with(&mut lg, goal, backend, &SymbolicOptions::default(), &limits)
                .unwrap_err();
            match err {
                SolveError::ResourceExhausted {
                    resource: Resource::Iterations,
                    spent,
                    limit,
                } => {
                    assert_eq!((spent, limit), (1, 1), "{backend}");
                }
                other => panic!("{backend}: expected iteration exhaustion, got {other}"),
            }
        }
    }

    #[test]
    fn zero_deadline_exhausts_immediately() {
        for backend in BackendChoice::ALL {
            let mut lg = Logic::new();
            let goal = lg.parse("a & <1>b").unwrap();
            let limits = Limits {
                deadline: Some(Duration::ZERO),
                ..Limits::default()
            };
            let err = solve_with(&mut lg, goal, backend, &SymbolicOptions::default(), &limits)
                .unwrap_err();
            assert_eq!(
                err.exhausted().map(|e| e.resource),
                Some(Resource::WallClock),
                "{backend}: {err}"
            );
        }
    }

    #[test]
    fn node_budget_exhausts_the_symbolic_backend() {
        let mut lg = Logic::new();
        let goal = lg.parse("a & <1>(b & <2>(c & <1>d))").unwrap();
        let limits = Limits {
            max_bdd_nodes: Some(8),
            ..Limits::default()
        };
        for backend in [BackendChoice::Symbolic, BackendChoice::Dual] {
            let err = solve_with(&mut lg, goal, backend, &SymbolicOptions::default(), &limits)
                .unwrap_err();
            match err {
                SolveError::ResourceExhausted {
                    resource: Resource::BddNodes,
                    spent,
                    limit,
                } => {
                    assert!(spent > limit, "{backend}: {spent} vs {limit}");
                    assert_eq!(limit, 8, "{backend}");
                }
                other => panic!("{backend}: expected node exhaustion, got {other}"),
            }
        }
        // The budget does not bother the enumerating backends.
        let s = solve_with(
            &mut lg,
            goal,
            BackendChoice::Explicit,
            &SymbolicOptions::default(),
            &limits,
        )
        .unwrap();
        assert!(s.outcome.is_satisfiable());
    }

    #[test]
    fn traced_solves_emit_phase_and_step_events() {
        use std::sync::Arc;
        for backend in BackendChoice::ALL {
            let mem = Arc::new(obs::MemorySink::new());
            let rec = Recorder::new(mem.clone());
            let mut lg = Logic::new();
            let goal = lg.parse("a & <1>(b & <2>c)").unwrap();
            let mut mgr = bdd::Bdd::new();
            let s = solve_with_traced(
                &mut lg,
                goal,
                backend,
                &SymbolicOptions::default(),
                &mut mgr,
                &Limits::default(),
                &rec,
            )
            .unwrap();
            assert!(s.outcome.is_satisfiable(), "{backend}");
            let events = mem.drain();
            let steps: Vec<_> = events.iter().filter(|e| e.kind == "step").collect();
            let phases: Vec<&'static str> = events
                .iter()
                .filter(|e| e.kind == "phase")
                .filter_map(|e| {
                    e.fields.iter().find_map(|(n, v)| match v {
                        FieldValue::Str(s) if *n == "phase" => Some(*s),
                        _ => None,
                    })
                })
                .collect();
            assert!(phases.contains(&"fixpoint"), "{backend}: phases {phases:?}");
            // One step event per driver iteration (dual runs two drivers).
            let min_steps = s.stats.iterations;
            assert!(
                steps.len() >= min_steps.min(2),
                "{backend}: {} steps for {} iterations",
                steps.len(),
                min_steps
            );
            // Every step carries the envelope the schema documents.
            for e in &steps {
                for field in ["iter", "nodes", "proved", "frontier", "dt_us"] {
                    assert!(
                        e.fields.iter().any(|(n, _)| *n == field),
                        "{backend}: step missing {field}"
                    );
                }
            }
            // The proved measure grows monotonically within one solve for
            // the single-driver backends (dual and portfolio interleave
            // several drivers' event streams).
            if !matches!(backend, BackendChoice::Dual | BackendChoice::Portfolio) {
                let proved: Vec<u64> = steps
                    .iter()
                    .filter_map(|e| {
                        e.fields.iter().find_map(|(n, v)| match v {
                            FieldValue::U64(u) if *n == "proved" => Some(*u),
                            _ => None,
                        })
                    })
                    .collect();
                assert!(
                    proved.windows(2).all(|w| w[0] <= w[1]),
                    "{backend}: proved not monotone: {proved:?}"
                );
            }
        }
    }

    #[test]
    fn traced_budget_hits_emit_limit_events() {
        use std::sync::Arc;
        let mem = Arc::new(obs::MemorySink::new());
        let rec = Recorder::new(mem.clone());
        let mut lg = Logic::new();
        let goal = lg.parse("a & <1>(b & <1>(c & <1>d))").unwrap();
        let mut mgr = bdd::Bdd::new();
        let limits = Limits {
            max_iterations: Some(1),
            ..Limits::default()
        };
        let err = solve_with_traced(
            &mut lg,
            goal,
            BackendChoice::Symbolic,
            &SymbolicOptions::default(),
            &mut mgr,
            &limits,
            &rec,
        )
        .unwrap_err();
        assert!(matches!(err, SolveError::ResourceExhausted { .. }));
        let events = mem.drain();
        let limit = events
            .iter()
            .find(|e| e.kind == "limit")
            .expect("limit event recorded");
        assert!(
            limit
                .fields
                .iter()
                .any(|(n, v)| *n == "resource"
                    && *v == FieldValue::Str(Resource::Iterations.as_str()))
        );
    }

    #[test]
    fn generous_limits_do_not_change_verdicts() {
        let generous = Limits {
            deadline: Some(Duration::from_secs(120)),
            max_bdd_nodes: Some(100_000_000),
            max_iterations: Some(1_000_000),
            max_lean_diamonds: 16,
            ..Limits::none()
        };
        for (src, expect) in [("a & <1>b", true), ("a & ~a", false)] {
            for backend in BackendChoice::ALL {
                let mut lg = Logic::new();
                let goal = lg.parse(src).unwrap();
                let s = solve_with(
                    &mut lg,
                    goal,
                    backend,
                    &SymbolicOptions::default(),
                    &generous,
                )
                .unwrap();
                assert_eq!(s.outcome.is_satisfiable(), expect, "{backend}: {src}");
            }
        }
    }
}

//! Existential quantification and the fused relational product.
//!
//! Both operations memoize through the manager's unified generational
//! operation cache (see [`crate::cache`]), keyed by the interned
//! quantification set and the full (complement-bit-carrying) operand
//! edges — quantification does not commute with complement, so the
//! complement bit is part of the key.

use crate::cache::{OP_AND_EXISTS, OP_EXISTS};
use crate::manager::{Bdd, NodeId};

/// An interned set of variables to quantify over.
///
/// Interning gives each set a small id, so the quantification caches can be
/// keyed by `(set, node)` pairs cheaply. Create with [`Bdd::quant_set`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuantSet(pub(crate) u32);

impl Bdd {
    /// Interns a set of variables for quantification.
    pub fn quant_set(&mut self, vars: impl IntoIterator<Item = u32>) -> QuantSet {
        let mut v: Vec<u32> = vars.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        if let Some(pos) = self.quant_sets.iter().position(|s| *s == v) {
            return QuantSet(pos as u32);
        }
        self.quant_sets.push(v);
        QuantSet((self.quant_sets.len() - 1) as u32)
    }

    fn quant_contains(&self, set: QuantSet, var: u32) -> bool {
        self.quant_sets[set.0 as usize].binary_search(&var).is_ok()
    }

    /// Largest variable of the set, used to stop recursion early.
    fn quant_max(&self, set: QuantSet) -> Option<u32> {
        self.quant_sets[set.0 as usize].last().copied()
    }

    /// Existential quantification `∃ vars. f`.
    ///
    /// # Example
    ///
    /// ```
    /// use bdd::Bdd;
    ///
    /// let mut m = Bdd::new();
    /// let (x, y) = (m.var(0), m.var(1));
    /// let f = m.and(x, y);
    /// let qy = m.quant_set([1]);
    /// assert_eq!(m.exists(f, qy), x); // ∃y. x∧y  =  x
    /// let g = m.xor(x, y);
    /// assert_eq!(m.exists(g, qy), m.one()); // ∃y. x⊕y  =  ⊤
    /// ```
    pub fn exists(&mut self, f: NodeId, set: QuantSet) -> NodeId {
        let Some(max) = self.quant_max(set) else {
            return f;
        };
        self.exists_rec(f, set, max)
    }

    fn exists_rec(&mut self, f: NodeId, set: QuantSet, max: u32) -> NodeId {
        if self.is_terminal(f) || self.var_of(f) > max {
            return f;
        }
        if let Some(r) = self.cache.get(OP_EXISTS, set.0, f.0, 0) {
            return NodeId(r);
        }
        let v = self.var_of(f);
        let (lo, hi) = self.children(f);
        let rlo = self.exists_rec(lo, set, max);
        let rhi = self.exists_rec(hi, set, max);
        let r = if self.quant_contains(set, v) {
            self.or(rlo, rhi)
        } else {
            self.mk(v, rlo, rhi)
        };
        self.cache.put(OP_EXISTS, set.0, f.0, 0, r.0);
        r
    }

    /// Fused relational product `∃ vars. (f ∧ g)`.
    ///
    /// Computes the conjunction and the quantification in a single
    /// recursion without materializing `f ∧ g` — the core primitive of
    /// conjunctive partitioning with early quantification (paper §7.3).
    /// Complement edges add two free short-circuits: `f = g` collapses to
    /// `∃ vars. f` and `f = ¬g` to ⊥, both by id comparison alone.
    pub fn and_exists(&mut self, f: NodeId, g: NodeId, set: QuantSet) -> NodeId {
        let (f, g) = if f <= g { (f, g) } else { (g, f) };
        if f == self.zero() || g == self.zero() {
            return self.zero();
        }
        if f == self.one() {
            return self.exists(g, set);
        }
        if f == g {
            return self.exists(f, set);
        }
        if f == self.not(g) {
            return self.zero();
        }
        // Neither is terminal now (a terminal would be ⊤ or ⊥, both
        // handled above; g ≥ f by id).
        if let Some(r) = self.cache.get(OP_AND_EXISTS, set.0, f.0, g.0) {
            return NodeId(r);
        }
        let vf = self.var_of(f);
        let vg = self.var_of(g);
        let v = vf.min(vg);
        let (f0, f1) = if vf == v { self.children(f) } else { (f, f) };
        let (g0, g1) = if vg == v { self.children(g) } else { (g, g) };
        let r = if self.quant_contains(set, v) {
            let r0 = self.and_exists(f0, g0, set);
            // Short-circuit: x ∨ ⊤ = ⊤.
            if r0 == self.one() {
                self.one()
            } else {
                let r1 = self.and_exists(f1, g1, set);
                self.or(r0, r1)
            }
        } else {
            let r0 = self.and_exists(f0, g0, set);
            let r1 = self.and_exists(f1, g1, set);
            self.mk(v, r0, r1)
        };
        self.cache.put(OP_AND_EXISTS, set.0, f.0, g.0, r.0);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exists_drops_variable() {
        let mut m = Bdd::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.and(x, y);
        let s = m.quant_set([1]);
        assert_eq!(m.exists(f, s), x);
        let s01 = m.quant_set([0, 1]);
        assert_eq!(m.exists(f, s01), m.one());
        let z = m.zero();
        assert_eq!(m.exists(z, s01), m.zero());
    }

    #[test]
    fn exists_of_disjunction() {
        let mut m = Bdd::new();
        let x = m.var(0);
        let y = m.var(1);
        let ny = m.not(y);
        let f = m.or(x, ny); // ∃y: always satisfiable
        let s = m.quant_set([1]);
        assert_eq!(m.exists(f, s), m.one());
    }

    #[test]
    fn exists_does_not_commute_with_complement() {
        // ∃y.¬(x∧y) = ⊤ while ¬∃y.(x∧y) = ¬x: the cache must key on the
        // complement bit.
        let mut m = Bdd::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.and(x, y);
        let nf = m.not(f);
        let s = m.quant_set([1]);
        let a = m.exists(f, s);
        let b = m.exists(nf, s);
        assert_eq!(a, x);
        assert_eq!(b, m.one());
        assert_ne!(m.not(a), b);
    }

    #[test]
    fn and_exists_equals_unfused() {
        let mut m = Bdd::new();
        // f(x0,y1,y3), g(y1,x2,y3) with y-vars odd.
        let x0 = m.var(0);
        let y1 = m.var(1);
        let x2 = m.var(2);
        let y3 = m.var(3);
        let f = {
            let t = m.xor(x0, y1);
            m.or(t, y3)
        };
        let g = {
            let t = m.iff(y1, x2);
            m.and(t, y3)
        };
        let s = m.quant_set([1, 3]);
        let fused = m.and_exists(f, g, s);
        let plain = {
            let c = m.and(f, g);
            m.exists(c, s)
        };
        assert_eq!(fused, plain);
    }

    #[test]
    fn and_exists_terminal_cases() {
        let mut m = Bdd::new();
        let x = m.var(0);
        let s = m.quant_set([0]);
        let zero = m.zero();
        let one = m.one();
        assert_eq!(m.and_exists(zero, x, s), m.zero());
        assert_eq!(m.and_exists(one, x, s), m.one());
        let empty = m.quant_set(std::iter::empty::<u32>());
        assert_eq!(m.and_exists(one, x, empty), x);
        // The complement-edge short-circuits.
        let nx = m.not(x);
        assert_eq!(m.and_exists(x, nx, empty), m.zero());
        assert_eq!(m.and_exists(x, x, empty), x);
    }

    #[test]
    fn relational_image() {
        // Relation R(x,y) = (y ↔ ¬x) over rails x=var0, y=var1.
        // Image of {x=1} is {y=0} — computed as ∃x. S(x) ∧ R(x,y).
        let mut m = Bdd::new();
        let x = m.var(0);
        let y = m.var(1);
        let nx = m.not(x);
        let r = m.iff(y, nx);
        let s_set = x; // S = {x=1}
        let qx = m.quant_set([0]);
        let img = m.and_exists(s_set, r, qx);
        let ny = m.not(y);
        assert_eq!(img, ny);
    }
}

//! Fault injection against the TCP serving tier: panicking solves, slow
//! clients, garbage bytes, oversized lines, mid-request disconnects,
//! connection-pool saturation — and all of them at once while a healthy
//! tenant keeps getting correct verdicts.

mod common;

use std::io::Write;
use std::time::Duration;

use common::{b, s, start, test_config, Client};
use engine::Value;
use serve::ServerConfig;

#[test]
fn panicking_solve_degrades_to_error_and_the_worker_survives() {
    // One worker: if the panic killed it, the follow-up solve would hang.
    let server = start(ServerConfig {
        threads: 1,
        ..test_config()
    });
    let mut c = Client::connect(&server);

    let r = c.roundtrip(r#"{"id":1,"op":"panic"}"#);
    assert_eq!(s(&r, "status"), Some("error"), "{}", r.to_json());
    assert!(
        s(&r, "error").is_some_and(|e| e.contains("panicked")),
        "{}",
        r.to_json()
    );

    // The same worker thread answers this correctly afterwards.
    let r = c.roundtrip(r#"{"id":2,"op":"sat","query":"child::a"}"#);
    assert_eq!(s(&r, "status"), Some("holds"));

    // The containment metric is visible through the metrics op.
    let m = c.roundtrip(r#"{"id":3,"op":"metrics"}"#).to_json();
    assert!(m.contains("xsat_worker_panics_total"), "{m}");

    server.shutdown();
}

#[test]
fn garbage_and_oversized_lines_cost_one_error_each_not_the_stream() {
    let server = start(ServerConfig {
        max_line_bytes: 256,
        ..test_config()
    });
    let mut c = Client::connect(&server);

    let r = c.roundtrip("this is not json");
    assert_eq!(s(&r, "status"), Some("error"));

    c.send_raw(b"\xff\xfe\x01{binary garbage}\n");
    let r = c.recv().expect("binary garbage response");
    assert_eq!(s(&r, "status"), Some("error"));

    let huge = format!(
        "{{\"op\":\"query\",\"name\":\"big\",\"xpath\":\"{}\"}}\n",
        "a".repeat(4096)
    );
    c.send_raw(huge.as_bytes());
    let r = c.recv().expect("oversized response");
    assert_eq!(s(&r, "status"), Some("error"));
    assert!(
        s(&r, "error").is_some_and(|e| e.contains("256-byte cap")),
        "{}",
        r.to_json()
    );

    // The connection is still line-synchronized and serving.
    let r = c.roundtrip(r#"{"id":1,"op":"sat","query":"child::a"}"#);
    assert_eq!(s(&r, "status"), Some("holds"));

    server.shutdown();
}

#[test]
fn slow_client_times_out_without_affecting_others() {
    let server = start(ServerConfig {
        read_timeout: Some(Duration::from_millis(150)),
        ..test_config()
    });
    let mut slow = Client::connect(&server);
    let mut healthy = Client::connect(&server);

    // Half a request line, then silence: the server must drop this
    // connection, not wait forever holding its resources.
    slow.send_raw(b"{\"op\":\"sat\",");

    // Meanwhile the healthy connection keeps round-tripping.
    for i in 0..3 {
        let r = healthy.roundtrip(&format!(r#"{{"id":{i},"op":"sat","query":"child::a"}}"#));
        assert_eq!(s(&r, "status"), Some("holds"));
        std::thread::sleep(Duration::from_millis(60));
    }

    // The slow connection got the timeout notice and then EOF.
    let r = slow.recv().expect("timeout notice");
    assert!(
        s(&r, "error").is_some_and(|e| e.contains("idle timeout")),
        "{}",
        r.to_json()
    );
    assert_eq!(slow.recv(), None, "connection closed after the notice");

    server.shutdown();
}

#[test]
fn mid_request_disconnect_is_contained() {
    let server = start(test_config());
    {
        let mut c = Client::connect(&server);
        // A solve is admitted, then the client vanishes before reading.
        c.send(r#"{"id":1,"op":"sleep","ms":100}"#);
        c.send(r#"{"id":2,"op":"sat","query":"child::a"}"#);
        let _ = c.stream().shutdown(std::net::Shutdown::Both);
    }
    // The server keeps serving new connections correctly.
    let mut c = Client::connect(&server);
    let r = c.roundtrip(r#"{"id":3,"op":"sat","query":"child::b"}"#);
    assert_eq!(s(&r, "status"), Some("holds"));
    let report = server.shutdown();
    assert!(report.drained, "orphaned work still drains");
}

#[test]
fn connection_pool_bound_rejects_with_a_typed_error() {
    let server = start(ServerConfig {
        max_connections: 1,
        ..test_config()
    });
    let mut first = Client::connect(&server);
    // Prove the first connection is established server-side.
    let r = first.roundtrip(r#"{"op":"stats"}"#);
    assert_eq!(b(&r, "ok"), Some(true));

    let mut second = Client::connect(&server);
    let r = second.recv().expect("rejection line");
    assert!(
        s(&r, "error").is_some_and(|e| e.contains("connection limit")),
        "{}",
        r.to_json()
    );
    assert_eq!(second.recv(), None, "rejected connection is closed");

    // The admitted connection is unaffected.
    let r = first.roundtrip(r#"{"id":1,"op":"sat","query":"child::a"}"#);
    assert_eq!(s(&r, "status"), Some("holds"));

    server.shutdown();
}

#[test]
fn malformed_tenant_and_unknown_ops_are_typed_errors() {
    let server = start(test_config());
    let mut c = Client::connect(&server);
    let r = c.roundtrip(r#"{"op":"sat","query":"child::a","tenant":7}"#);
    assert!(s(&r, "error").is_some_and(|e| e.contains("tenant")));
    let r = c.roundtrip(r#"{"op":"frobnicate"}"#);
    assert!(s(&r, "error").is_some_and(|e| e.contains("unknown op")));
    // Fault ops are rejected like any unknown op when injection is off.
    let safe = start(ServerConfig {
        fault_injection: false,
        ..test_config()
    });
    let mut sc = Client::connect(&safe);
    let r = sc.roundtrip(r#"{"op":"panic"}"#);
    assert!(
        s(&r, "error").is_some_and(|e| e.contains("unknown op")),
        "{}",
        r.to_json()
    );
    safe.shutdown();
    server.shutdown();
}

/// The acceptance scenario: slow client + garbage bytes + panic-inducing
/// requests + queue saturation, all concurrent, while two healthy tenants
/// keep getting correct verdicts; then a clean drain.
#[test]
fn concurrent_faults_do_not_affect_healthy_tenants() {
    let server = start(ServerConfig {
        threads: 2,
        queue_depth: 4,
        read_timeout: Some(Duration::from_millis(400)),
        ..test_config()
    });

    let addr = server.local_addr();
    let make = move || {
        let stream = std::net::TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream
    };

    // Chaos thread 1: a slow client that stalls mid-line, repeatedly.
    let slow = std::thread::spawn(move || {
        for _ in 0..3 {
            let mut s = make();
            let _ = s.write_all(b"{\"op\":\"contains\",");
            std::thread::sleep(Duration::from_millis(120));
        }
    });
    // Chaos thread 2: garbage bytes and panic requests.
    let chaos = std::thread::spawn(move || {
        let mut s = make();
        for _ in 0..10 {
            let _ = s.write_all(b"\xff\xfe{not json}\n{\"op\":\"panic\"}\n");
            std::thread::sleep(Duration::from_millis(20));
        }
    });
    // Chaos thread 3: saturating sleep bursts (some will be shed).
    let burst = std::thread::spawn(move || {
        let mut s = make();
        for i in 0..20 {
            let _ = s.write_all(format!("{{\"id\":{i},\"op\":\"sleep\",\"ms\":30}}\n").as_bytes());
            std::thread::sleep(Duration::from_millis(5));
        }
    });

    // Two healthy tenants, each with its own namespace, each asserting
    // every verdict while the chaos runs.
    let healthy: Vec<_> = ["a", "b"]
        .into_iter()
        .map(|t| {
            let xpath = if t == "a" { "child::a" } else { "child::b" };
            std::thread::spawn({
                let server_addr = addr;
                move || {
                    let stream = std::net::TcpStream::connect(server_addr).expect("connect");
                    stream
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .unwrap();
                    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
                    let mut stream = stream;
                    let mut ok = 0usize;
                    for i in 0..15 {
                        writeln!(
                            stream,
                            "{{\"id\":{i},\"op\":\"contains\",\"tenant\":\"{t}\",\"lhs\":\"{xpath}\",\"rhs\":\"child::*\"}}"
                        )
                        .unwrap();
                        let mut line = String::new();
                        use std::io::BufRead;
                        reader.read_line(&mut line).unwrap();
                        let v = engine::json::parse(line.trim()).unwrap();
                        match v.get("status").and_then(Value::as_str) {
                            // Correct verdict: the containment holds.
                            Some("holds") => ok += 1,
                            // Under saturation a typed shed is legitimate —
                            // but it must be exactly the shed shape.
                            Some("unknown") => {
                                assert_eq!(
                                    v.get("resource").and_then(Value::as_str),
                                    Some("shed"),
                                    "{line}"
                                );
                            }
                            other => panic!("tenant {t} got {other:?}: {line}"),
                        }
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    ok
                }
            })
        })
        .collect();

    slow.join().unwrap();
    chaos.join().unwrap();
    burst.join().unwrap();
    for h in healthy {
        let ok = h.join().unwrap();
        assert!(
            ok >= 5,
            "healthy tenants must keep getting correct verdicts under chaos (got {ok})"
        );
    }

    let report = server.shutdown();
    assert!(report.drained, "shutdown drains cleanly after the chaos");
}

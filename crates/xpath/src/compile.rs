//! Translation of XPath expressions into Lµ (Figs 7, 8 and 10).
//!
//! The translation has two modes:
//!
//! * the *navigational* mode `E→⟦e⟧χ` / `P→⟦p⟧χ` / `A→⟦a⟧χ`: the resulting
//!   formula holds exactly at the nodes **selected** by the expression, where
//!   `χ` describes the context the navigation started from;
//! * the *filtering* mode `Q←⟦q⟧χ` / `P←⟦p⟧χ` / `A←⟦a⟧χ`: the formula holds
//!   at nodes **from which** the qualifier path exists, without moving —
//!   axes are translated through their symmetric axis.
//!
//! A relative expression marks its initial context with the start
//! proposition `s`; an absolute expression navigates from the root. By
//! Proposition 5.1 the translation is linear in the size of the expression
//! and produces cycle-free formulas.

use mulogic::{Formula, Logic, Program};

use crate::ast::{Axis, Expr, NodeTest, Path, Qualifier};

/// `E→⟦e⟧χ` (Fig 8): compiles a full expression against a context formula.
///
/// The returned formula is satisfied by exactly the focused trees selected
/// by `e` when evaluation starts from a node satisfying `χ` (which is
/// conjoined with the start mark `s` for relative expressions).
///
/// # Example
///
/// ```
/// use mulogic::Logic;
/// use xpath::{parse, compile_expr};
///
/// let mut lg = Logic::new();
/// let e = parse("child::a[child::b]").unwrap();
/// let t = lg.tt();
/// let f = compile_expr(&mut lg, &e, t);
/// assert!(mulogic::cycle_free(&lg, f));
/// ```
pub fn compile_expr(lg: &mut Logic, e: &Expr, chi: Formula) -> Formula {
    match e {
        Expr::Absolute(p) => {
            // (µZ.(¬⟨1̄⟩⊤ ∧ ¬⟨2̄⟩⊤) ∨ ⟨2̄⟩Z) ∧ (µY.(χ ∧ s) ∨ ⟨1⟩Y ∨ ⟨2⟩Y)
            //
            // The paper (Fig 8) writes the first conjunct as
            // `µZ.¬⟨1̄⟩⊤ ∨ ⟨2̄⟩Z`, but `⟨1̄⟩` is undefined at *any*
            // non-leftmost sibling, so that disjunct would hold at every
            // node with a left sibling. "Root row" additionally requires
            // `¬⟨2̄⟩⊤` at the leftmost position.
            let root = {
                let z = lg.fresh_var("Zroot");
                let zv = lg.var(z);
                let no_up = lg.not_diam_true(Program::Up1);
                let no_left = lg.not_diam_true(Program::Up2);
                let at_top = lg.and(no_up, no_left);
                let left = lg.diam(Program::Up2, zv);
                let body = lg.or(at_top, left);
                lg.mu1(z, body)
            };
            let below = {
                let y = lg.fresh_var("Ymark");
                let yv = lg.var(y);
                let s = lg.start();
                let cs = lg.and(chi, s);
                let d1 = lg.diam(Program::Down1, yv);
                let d2 = lg.diam(Program::Down2, yv);
                let or1 = lg.or(cs, d1);
                let body = lg.or(or1, d2);
                lg.mu1(y, body)
            };
            let ctx = lg.and(root, below);
            compile_path_fwd(lg, p, ctx)
        }
        Expr::Relative(p) => {
            let s = lg.start();
            let ctx = lg.and(chi, s);
            compile_path_fwd(lg, p, ctx)
        }
        Expr::Union(a, b) => {
            let fa = compile_expr(lg, a, chi);
            let fb = compile_expr(lg, b, chi);
            lg.or(fa, fb)
        }
        Expr::Intersect(a, b) => {
            let fa = compile_expr(lg, a, chi);
            let fb = compile_expr(lg, b, chi);
            lg.and(fa, fb)
        }
    }
}

/// `P→⟦p⟧χ` (Fig 8).
fn compile_path_fwd(lg: &mut Logic, p: &Path, chi: Formula) -> Formula {
    match p {
        Path::Seq(p1, p2) => {
            let mid = compile_path_fwd(lg, p1, chi);
            compile_path_fwd(lg, p2, mid)
        }
        Path::Qualified(p, q) => {
            let sel = compile_path_fwd(lg, p, chi);
            let tt = lg.tt();
            let filt = compile_qualifier_bwd(lg, q, tt);
            lg.and(sel, filt)
        }
        Path::Step(a, t) => {
            let nav = compile_axis_fwd(lg, *a, chi);
            match t {
                NodeTest::Name(l) => {
                    let prop = lg.prop(*l);
                    lg.and(prop, nav)
                }
                NodeTest::Star => nav,
            }
        }
        Path::Union(p1, p2) => {
            let f1 = compile_path_fwd(lg, p1, chi);
            let f2 = compile_path_fwd(lg, p2, chi);
            lg.or(f1, f2)
        }
    }
}

/// `A→⟦a⟧χ` (Fig 7): holds at every node reachable through axis `a` from a
/// node satisfying `χ`.
pub fn compile_axis_fwd(lg: &mut Logic, a: Axis, chi: Formula) -> Formula {
    match a {
        Axis::SelfAxis => chi,
        // µZ.⟨1̄⟩χ ∨ ⟨2̄⟩Z
        Axis::Child => {
            let z = lg.fresh_var("Z");
            let zv = lg.var(z);
            let up = lg.diam(Program::Up1, chi);
            let left = lg.diam(Program::Up2, zv);
            let body = lg.or(up, left);
            lg.mu1(z, body)
        }
        // µZ.⟨2̄⟩χ ∨ ⟨2̄⟩Z
        Axis::FollSibling => {
            let z = lg.fresh_var("Z");
            let zv = lg.var(z);
            let prev = lg.diam(Program::Up2, chi);
            let rec = lg.diam(Program::Up2, zv);
            let body = lg.or(prev, rec);
            lg.mu1(z, body)
        }
        // µZ.⟨2⟩χ ∨ ⟨2⟩Z
        Axis::PrecSibling => {
            let z = lg.fresh_var("Z");
            let zv = lg.var(z);
            let next = lg.diam(Program::Down2, chi);
            let rec = lg.diam(Program::Down2, zv);
            let body = lg.or(next, rec);
            lg.mu1(z, body)
        }
        // ⟨1⟩µZ.χ ∨ ⟨2⟩Z
        Axis::Parent => {
            let z = lg.fresh_var("Z");
            let zv = lg.var(z);
            let rec = lg.diam(Program::Down2, zv);
            let body = lg.or(chi, rec);
            let m = lg.mu1(z, body);
            lg.diam(Program::Down1, m)
        }
        // µZ.⟨1̄⟩(χ ∨ Z) ∨ ⟨2̄⟩Z
        Axis::Descendant => {
            let z = lg.fresh_var("Z");
            let zv = lg.var(z);
            let or1 = lg.or(chi, zv);
            let up = lg.diam(Program::Up1, or1);
            let left = lg.diam(Program::Up2, zv);
            let body = lg.or(up, left);
            lg.mu1(z, body)
        }
        // µZ.χ ∨ µY.⟨1̄⟩(Y ∨ Z) ∨ ⟨2̄⟩Y
        Axis::DescOrSelf => {
            let z = lg.fresh_var("Z");
            let zv = lg.var(z);
            let y = lg.fresh_var("Y");
            let yv = lg.var(y);
            let or_yz = lg.or(yv, zv);
            let up = lg.diam(Program::Up1, or_yz);
            let left = lg.diam(Program::Up2, yv);
            let inner_body = lg.or(up, left);
            let inner = lg.mu1(y, inner_body);
            let body = lg.or(chi, inner);
            lg.mu1(z, body)
        }
        // ⟨1⟩µZ.χ ∨ ⟨1⟩Z ∨ ⟨2⟩Z
        Axis::Ancestor => {
            let z = lg.fresh_var("Z");
            let zv = lg.var(z);
            let d1 = lg.diam(Program::Down1, zv);
            let d2 = lg.diam(Program::Down2, zv);
            let or1 = lg.or(chi, d1);
            let body = lg.or(or1, d2);
            let m = lg.mu1(z, body);
            lg.diam(Program::Down1, m)
        }
        // µZ.χ ∨ ⟨1⟩µY.Z ∨ ⟨2⟩Y
        Axis::AncOrSelf => {
            let z = lg.fresh_var("Z");
            let zv = lg.var(z);
            let y = lg.fresh_var("Y");
            let yv = lg.var(y);
            let d2 = lg.diam(Program::Down2, yv);
            let inner_body = lg.or(zv, d2);
            let inner = lg.mu1(y, inner_body);
            let down = lg.diam(Program::Down1, inner);
            let body = lg.or(chi, down);
            lg.mu1(z, body)
        }
        // desc-or-self ∘ foll-sibling ∘ anc-or-self
        Axis::Following => {
            let anc = compile_axis_fwd(lg, Axis::AncOrSelf, chi);
            let sib = compile_axis_fwd(lg, Axis::FollSibling, anc);
            compile_axis_fwd(lg, Axis::DescOrSelf, sib)
        }
        // desc-or-self ∘ prec-sibling ∘ anc-or-self
        Axis::Preceding => {
            let anc = compile_axis_fwd(lg, Axis::AncOrSelf, chi);
            let sib = compile_axis_fwd(lg, Axis::PrecSibling, anc);
            compile_axis_fwd(lg, Axis::DescOrSelf, sib)
        }
    }
}

/// `Q←⟦q⟧χ` (Fig 10): holds at nodes from which the qualifier holds, without
/// navigating away.
fn compile_qualifier_bwd(lg: &mut Logic, q: &Qualifier, chi: Formula) -> Formula {
    match q {
        Qualifier::And(a, b) => {
            let fa = compile_qualifier_bwd(lg, a, chi);
            let fb = compile_qualifier_bwd(lg, b, chi);
            lg.and(fa, fb)
        }
        Qualifier::Or(a, b) => {
            let fa = compile_qualifier_bwd(lg, a, chi);
            let fb = compile_qualifier_bwd(lg, b, chi);
            lg.or(fa, fb)
        }
        Qualifier::Not(q) => {
            let f = compile_qualifier_bwd(lg, q, chi);
            lg.not(f)
        }
        Qualifier::Path(p) => compile_path_bwd(lg, p, chi),
    }
}

/// `P←⟦p⟧χ` (Fig 10).
fn compile_path_bwd(lg: &mut Logic, p: &Path, chi: Formula) -> Formula {
    match p {
        Path::Seq(p1, p2) => {
            let inner = compile_path_bwd(lg, p2, chi);
            compile_path_bwd(lg, p1, inner)
        }
        Path::Qualified(p, q) => {
            let fq = compile_qualifier_bwd(lg, q, chi);
            let both = lg.and(chi, fq);
            compile_path_bwd(lg, p, both)
        }
        Path::Step(a, t) => {
            let target = match t {
                NodeTest::Name(l) => {
                    let prop = lg.prop(*l);
                    lg.and(chi, prop)
                }
                NodeTest::Star => chi,
            };
            compile_axis_fwd(lg, a.symmetric(), target)
        }
        Path::Union(p1, p2) => {
            let f1 = compile_path_bwd(lg, p1, chi);
            let f2 = compile_path_bwd(lg, p2, chi);
            lg.or(f1, f2)
        }
    }
}

/// Compiles `e` with the trivial context `⊤` — the common entry point for
/// decision problems without type constraints.
pub fn compile_query(lg: &mut Logic, e: &Expr) -> Formula {
    let t = lg.tt();
    compile_expr(lg, e, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use mulogic::cycle_free;

    #[test]
    fn translations_are_cycle_free() {
        let mut lg = Logic::new();
        let queries = [
            "child::a[child::b]",
            "/a[.//b[c/*//d]/b[c//d]/b[c/d]]",
            "a/b//c/foll-sibling::d/e",
            "descendant::a[ancestor::a]",
            "a/b[//c]/following::d/e ∩ a/d[preceding::c]/e",
            "preceding::a | following::b",
            "child::c/prec-sibling::a[child::b]",
        ];
        for q in queries {
            let e = parse(q).unwrap();
            let f = compile_query(&mut lg, &e);
            assert!(cycle_free(&lg, f), "not cycle-free: {q}");
            assert!(lg.is_closed(f), "not closed: {q}");
        }
    }

    #[test]
    fn translation_is_linear_in_query_size() {
        // Compile chains child::a/child::a/…/child::a of growing length and
        // check the formula size grows linearly (Proposition 5.1).
        let mut sizes = Vec::new();
        for n in [4usize, 8, 16] {
            let mut lg = Logic::new();
            let q = vec!["a"; n].join("/");
            let e = parse(&q).unwrap();
            let f = compile_query(&mut lg, &e);
            sizes.push(lg.size(f));
        }
        let d1 = sizes[1] - sizes[0];
        let d2 = sizes[2] - sizes[1];
        // Doubling the query size should roughly double the increment.
        assert!(d2 <= 2 * d1 + 8, "superlinear growth: {sizes:?}");
    }

    #[test]
    fn fig9_shape() {
        // child::a[child::b] = a ∧ (µX.⟨1̄⟩(χ∧s) ∨ ⟨2̄⟩X) ∧ ⟨1⟩µY.b ∨ ⟨2⟩Y
        let mut lg = Logic::new();
        let e = parse("child::a[child::b]").unwrap();
        let f = compile_query(&mut lg, &e);
        let shown = lg.display(f);
        assert!(shown.contains('a'), "{shown}");
        assert!(shown.contains("<-1>"), "{shown}");
        assert!(shown.contains("<1>"), "{shown}");
        assert!(lg.mentions_start(f));
    }

    #[test]
    fn star_steps_have_no_prop() {
        let mut lg = Logic::new();
        let e = parse("child::*").unwrap();
        let f = compile_query(&mut lg, &e);
        // µZ.⟨1̄⟩(⊤∧s) ∨ ⟨2̄⟩Z — no atomic proposition at all.
        let shown = lg.display(f);
        assert!(shown.contains("let_mu"), "{shown}");
    }
}

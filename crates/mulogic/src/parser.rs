//! Parser for the concrete formula syntax used in the paper's examples
//! (Fig 14): `let_mu X = …, Y = … in …`, `<1>`, `<-1>`, `~`, `&`, `|`,
//! `T`, `F`, `s`, plus the sugar `mu X . ϕ` for `let_mu X = ϕ in X`.

use std::error::Error;
use std::fmt;

use ftree::Label;

use crate::syntax::{Formula, Program, Var};
use crate::Logic;

/// Error returned by [`Logic::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFormulaError {
    msg: String,
    at: usize,
}

impl ParseFormulaError {
    fn new(msg: impl Into<String>, at: usize) -> Self {
        ParseFormulaError {
            msg: msg.into(),
            at,
        }
    }

    /// Byte offset of the error.
    pub fn offset(&self) -> usize {
        self.at
    }
}

impl fmt::Display for ParseFormulaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "formula syntax error at byte {}: {}", self.at, self.msg)
    }
}

impl Error for ParseFormulaError {}

struct Parser<'a, 'lg> {
    input: &'a str,
    pos: usize,
    lg: &'lg mut Logic,
    /// Lexical scope of fixpoint variables.
    scope: Vec<(String, Var)>,
}

impl Parser<'_, '_> {
    fn err(&self, msg: impl Into<String>) -> ParseFormulaError {
        ParseFormulaError::new(msg, self.pos)
    }

    fn skip_ws(&mut self) {
        while self.input[self.pos..]
            .chars()
            .next()
            .is_some_and(char::is_whitespace)
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.input[self.pos..].chars().next()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ParseFormulaError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected {c:?}")))
        }
    }

    /// The identifier starting at the cursor (after whitespace), without
    /// consuming it.
    fn peek_ident(&mut self) -> Option<&str> {
        self.skip_ws();
        let rest = &self.input[self.pos..];
        let end = rest
            .char_indices()
            .find(|(_, c)| !(c.is_alphanumeric() || "_.:".contains(*c) || *c == '-'))
            .map_or(rest.len(), |(i, _)| i);
        if end == 0 {
            None
        } else {
            Some(&rest[..end])
        }
    }

    fn ident(&mut self) -> Result<String, ParseFormulaError> {
        match self.peek_ident().map(str::to_owned) {
            Some(s) => {
                self.pos += s.len();
                Ok(s)
            }
            None => Err(self.err("expected an identifier")),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_ident() == Some(kw) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn lookup(&self, name: &str) -> Option<Var> {
        self.scope
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    fn formula(&mut self) -> Result<Formula, ParseFormulaError> {
        let mut acc = self.conjunction()?;
        while self.eat('|') {
            let rhs = self.conjunction()?;
            acc = self.lg.or(acc, rhs);
        }
        Ok(acc)
    }

    fn conjunction(&mut self) -> Result<Formula, ParseFormulaError> {
        let mut acc = self.unary()?;
        while self.eat('&') {
            let rhs = self.unary()?;
            acc = self.lg.and(acc, rhs);
        }
        Ok(acc)
    }

    fn program(&mut self) -> Result<Program, ParseFormulaError> {
        let neg = self.eat('-');
        let p = match self.peek() {
            Some('1') => {
                self.pos += 1;
                if neg {
                    Program::Up1
                } else {
                    Program::Down1
                }
            }
            Some('2') => {
                self.pos += 1;
                if neg {
                    Program::Up2
                } else {
                    Program::Down2
                }
            }
            _ => return Err(self.err("expected a program: 1, 2, -1 or -2")),
        };
        Ok(p)
    }

    fn unary(&mut self) -> Result<Formula, ParseFormulaError> {
        if self.eat('~') {
            let f = self.unary()?;
            return Ok(self.lg.not(f));
        }
        if self.eat('<') {
            let p = self.program()?;
            self.expect('>')?;
            let f = self.unary()?;
            return Ok(self.lg.diam(p, f));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Formula, ParseFormulaError> {
        if self.eat('(') {
            let f = self.formula()?;
            self.expect(')')?;
            return Ok(f);
        }
        if self.eat_keyword("let_mu") {
            return self.fixpoint(false);
        }
        if self.eat_keyword("let_nu") {
            return self.fixpoint(true);
        }
        if self.eat_keyword("mu") {
            return self.unary_fixpoint(false);
        }
        if self.eat_keyword("nu") {
            return self.unary_fixpoint(true);
        }
        match self.peek_ident() {
            Some("T") => {
                self.pos += 1;
                Ok(self.lg.tt())
            }
            Some("F") => {
                self.pos += 1;
                Ok(self.lg.ff())
            }
            Some("s") => {
                self.pos += 1;
                Ok(self.lg.start())
            }
            Some(_) => {
                let name = self.ident()?;
                match self.lookup(&name) {
                    Some(v) => Ok(self.lg.var(v)),
                    None => Ok(self.lg.prop(Label::new(&name))),
                }
            }
            None => Err(self.err("expected a formula")),
        }
    }

    fn unary_fixpoint(&mut self, greatest: bool) -> Result<Formula, ParseFormulaError> {
        let name = self.ident()?;
        self.expect('.')?;
        let v = self.lg.named_var(&name);
        self.scope.push((name, v));
        let phi = self.formula()?;
        self.scope.pop();
        Ok(if greatest {
            self.lg.nu1(v, phi)
        } else {
            self.lg.mu1(v, phi)
        })
    }

    fn fixpoint(&mut self, greatest: bool) -> Result<Formula, ParseFormulaError> {
        // First pass: collect the binding names so that definitions may be
        // mutually (and forwardly) recursive.
        let start = self.pos;
        let names = self.scan_binding_names()?;
        self.pos = start;

        let vars: Vec<Var> = names.iter().map(|n| self.lg.named_var(n)).collect();
        let depth = self.scope.len();
        for (n, v) in names.iter().zip(&vars) {
            self.scope.push((n.clone(), *v));
        }
        // Second pass: parse the definitions with the full scope installed.
        let mut binds = Vec::with_capacity(vars.len());
        for (i, var) in vars.iter().enumerate() {
            let name = self.ident()?;
            debug_assert_eq!(name, names[i]);
            self.expect('=')?;
            let phi = self.formula()?;
            binds.push((*var, phi));
            if i + 1 < vars.len() {
                self.expect(',')?;
            }
        }
        if !self.eat_keyword("in") {
            return Err(self.err("expected 'in'"));
        }
        let body = self.formula()?;
        self.scope.truncate(depth);
        Ok(if greatest {
            self.lg.nu(binds, body)
        } else {
            self.lg.mu(binds, body)
        })
    }

    /// Scans `name = ϕ (, name = ϕ)* in` without building formulas, and
    /// returns the binding names. The cursor ends after `in` (callers reset
    /// it).
    fn scan_binding_names(&mut self) -> Result<Vec<String>, ParseFormulaError> {
        let mut names = Vec::new();
        loop {
            names.push(self.ident()?);
            self.expect('=')?;
            self.skip_definition()?;
            if self.eat(',') {
                continue;
            }
            if self.eat_keyword("in") {
                return Ok(names);
            }
            return Err(self.err("expected ',' or 'in'"));
        }
    }

    /// Advances past one definition body, stopping (at nesting depth 0)
    /// before a `,` or the keyword `in`.
    fn skip_definition(&mut self) -> Result<(), ParseFormulaError> {
        let mut depth = 0usize;
        loop {
            self.skip_ws();
            if self.pos >= self.input.len() {
                return if depth == 0 {
                    Ok(())
                } else {
                    Err(self.err("unbalanced parentheses"))
                };
            }
            if depth == 0 {
                if self.input[self.pos..].starts_with(',') {
                    return Ok(());
                }
                if self.peek_ident() == Some("in") {
                    return Ok(());
                }
            }
            if let Some(id) = self.peek_ident() {
                // Skip identifiers (and 'in'/keywords at depth > 0) whole.
                self.pos += id.len();
                continue;
            }
            let c = self.input[self.pos..].chars().next().unwrap();
            match c {
                '(' | '<' => depth += 1,
                ')' | '>' => {
                    if depth == 0 {
                        return Err(self.err("unbalanced parentheses"));
                    }
                    depth -= 1;
                }
                _ => {}
            }
            self.pos += c.len_utf8();
        }
    }
}

impl Logic {
    /// Parses a formula from the paper's concrete syntax.
    ///
    /// # Errors
    ///
    /// Returns [`ParseFormulaError`] on malformed input.
    ///
    /// # Example
    ///
    /// ```
    /// use mulogic::Logic;
    ///
    /// let mut lg = Logic::new();
    /// let f = lg.parse("let_mu X = (a & ~<1>T) | <2>X in X").unwrap();
    /// assert!(lg.is_closed(f));
    /// ```
    pub fn parse(&mut self, input: &str) -> Result<Formula, ParseFormulaError> {
        let mut p = Parser {
            input,
            pos: 0,
            lg: self,
            scope: Vec::new(),
        };
        let f = p.formula()?;
        p.skip_ws();
        if p.pos != input.len() {
            return Err(p.err("trailing input"));
        }
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::FormulaKind;

    #[test]
    fn atoms() {
        let mut lg = Logic::new();
        assert_eq!(lg.parse("T").unwrap(), lg.tt());
        assert_eq!(lg.parse("F").unwrap(), lg.ff());
        assert_eq!(lg.parse("s").unwrap(), lg.start());
        let a = lg.prop(Label::new("a"));
        assert_eq!(lg.parse("a").unwrap(), a);
        assert_eq!(lg.parse("~a").unwrap(), lg.not_prop(Label::new("a")));
    }

    #[test]
    fn precedence_and_parens() {
        let mut lg = Logic::new();
        let f = lg.parse("a | b & c").unwrap();
        assert!(matches!(lg.kind(f), FormulaKind::Or(..)));
        let g = lg.parse("(a | b) & c").unwrap();
        assert!(matches!(lg.kind(g), FormulaKind::And(..)));
    }

    #[test]
    fn modalities() {
        let mut lg = Logic::new();
        let f = lg.parse("<1>T & <-2>a & ~<2>T").unwrap();
        let shown = lg.display(f);
        assert!(shown.contains("<1>T"));
        assert!(shown.contains("<-2>a"));
        assert!(shown.contains("~<2>T"));
    }

    #[test]
    fn mu_sugar() {
        let mut lg = Logic::new();
        let f = lg.parse("mu X . b | <2>X").unwrap();
        assert!(matches!(lg.kind(f), FormulaKind::Mu(..)));
        assert!(lg.is_closed(f));
    }

    #[test]
    fn let_mu_mutual_forward_reference() {
        let mut lg = Logic::new();
        let f = lg.parse("let_mu X = <1>Y, Y = c | <2>Y in X").unwrap();
        match lg.kind(f) {
            FormulaKind::Mu(binds, _) => assert_eq!(binds.len(), 2),
            k => panic!("unexpected {k:?}"),
        }
        assert!(lg.is_closed(f));
    }

    #[test]
    fn display_parse_roundtrip() {
        let mut lg = Logic::new();
        let srcs = [
            "a & <1>(b | s)",
            "let_mu X = (a & ~<1>T) | <2>X in X",
            "~<1>T & ~<-1>T & ~<-2>T",
            "let_mu X = <1>Y, Y = c | <2>Y in X & ~s",
        ];
        for src in srcs {
            // Each parse allocates fresh variables, so formulas with binders
            // are compared up to alpha-equivalence via their display form.
            let f = lg.parse(src).unwrap();
            let shown = lg.display(f);
            let g = lg.parse(&shown).unwrap();
            assert_eq!(
                lg.display(g),
                shown,
                "roundtrip failed for {src} -> {shown}"
            );
        }
    }

    #[test]
    fn wikipedia_style_formula_parses() {
        // A fragment in the Fig 14 style.
        let mut lg = Logic::new();
        let f = lg
            .parse(
                "let_mu X2 = (((text & ~<1>T) & ~<2>T) | ((redirect & ~<1>T) & ~<2>T)) \
                 | ((interwiki & ~<1>T) & (~<2>T | <2>X2)), \
                 X9 = (meta & <1>X2) & <2>X2 \
                 in X9",
            )
            .unwrap();
        assert!(lg.is_closed(f));
        assert!(crate::cycle_free(&lg, f));
    }

    #[test]
    fn shadowing_inner_binder_wins() {
        let mut lg = Logic::new();
        let f = lg
            .parse("let_mu X = <1>(let_mu X = a | <2>X in X) in X")
            .unwrap();
        assert!(lg.is_closed(f));
    }

    #[test]
    fn errors() {
        let mut lg = Logic::new();
        assert!(lg.parse("").is_err());
        assert!(lg.parse("a &").is_err());
        assert!(lg.parse("<3>a").is_err());
        assert!(lg.parse("(a").is_err());
        assert!(lg.parse("let_mu X = a").is_err());
        assert!(lg.parse("a b").is_err());
    }
}

//! The explicit-state reference solver (the algorithm of §6.2).
//!
//! ψ-types are enumerated as bit vectors and the `Upd` fixpoint of Fig 16
//! runs over concrete sets, split into an unmarked set `T°` and a marked set
//! `T•` (types whose proved subtree contains exactly one start mark) — the
//! four cases of `Upd`. Satisfiability is checked through the plunging
//! formula at root types (§7.1), so witness bookkeeping reduces to the
//! per-iteration snapshots used for model reconstruction.
//!
//! This backend is exponential in the number of lean diamonds and exists to
//! cross-validate the symbolic solver on small formulas; production use goes
//! through the symbolic backend.
//!
//! The fixpoint loop itself lives in the shared kernel
//! ([`run_fixpoint`](crate::kernel::run_fixpoint)); this module supplies
//! the enumerated-set [`Backend`] implementation.

use std::collections::HashMap;

use ftree::BinaryTree;
use mulogic::{status, BitsAlg, Formula, Logic, Program};

use obs::Recorder;

use crate::bits::{TypeBits, TypeEnumerator, MAX_EXPLICIT_DIAMONDS};
use crate::kernel::{limit_event, run_fixpoint_traced, Backend, SolveError, StepObservation};
use crate::limits::{Exhausted, Limits};
use crate::outcome::{Model, Solved, Telemetry};
use crate::prepare::Prepared;

struct Tables {
    /// All well-formed types.
    types: Vec<TypeBits>,
    /// Per type, per lean diamond entry: `status_ϕ(t)` of its argument.
    arg_status: Vec<Vec<bool>>,
    /// Per type: `status_ψ(t)` of the plunged formula.
    psi_status: Vec<bool>,
    /// Lean positions of the diamond entries with their programs.
    diams: Vec<(usize, Program)>,
    dt: [usize; 4],
    start_idx: usize,
}

impl Tables {
    fn build(lg: &mut Logic, prep: &Prepared) -> Tables {
        let en = TypeEnumerator::new(&prep.lean);
        let types = en.all();
        let entries: Vec<(usize, Program, Formula)> = prep.lean.diam_entries().collect();
        let mut arg_status = Vec::with_capacity(types.len());
        let mut psi_status = Vec::with_capacity(types.len());
        for t in &types {
            let bools = t.to_bools();
            let mut alg = BitsAlg::new(&bools);
            let mut memo = HashMap::new();
            let row: Vec<bool> = entries
                .iter()
                .map(|&(_, _, phi)| status(lg, &prep.lean, phi, &mut alg, &mut memo))
                .collect();
            psi_status.push(status(lg, &prep.lean, prep.psi, &mut alg, &mut memo));
            arg_status.push(row);
        }
        let dt = [
            prep.lean.diam_true_index(Program::Down1),
            prep.lean.diam_true_index(Program::Down2),
            prep.lean.diam_true_index(Program::Up1),
            prep.lean.diam_true_index(Program::Up2),
        ];
        Tables {
            types,
            arg_status,
            psi_status,
            diams: entries.iter().map(|&(i, p, _)| (i, p)).collect(),
            dt,
            start_idx: prep.lean.start_index(),
        }
    }

    /// The compatibility relation `∆_a(t, t')` for `a ∈ {1, 2}` (Def 6.2).
    fn delta(&self, a: Program, ti: usize, tj: usize) -> bool {
        debug_assert!(a.is_forward());
        let conv = a.converse();
        for (k, &(pos, p)) in self.diams.iter().enumerate() {
            if p == a {
                // ⟨a⟩ϕ ∈ t ⇔ ϕ ∈̇ t'
                if self.types[ti].get(pos) != self.arg_status[tj][k] {
                    return false;
                }
            } else if p == conv {
                // ⟨ā⟩ϕ ∈ t' ⇔ ϕ ∈̇ t
                if self.types[tj].get(pos) != self.arg_status[ti][k] {
                    return false;
                }
            }
        }
        true
    }

    fn has(&self, ti: usize, bit: usize) -> bool {
        self.types[ti].get(bit)
    }

    fn isparent(&self, ti: usize, a: Program) -> bool {
        let idx = match a {
            Program::Down1 => self.dt[0],
            Program::Down2 => self.dt[1],
            Program::Up1 => self.dt[2],
            Program::Up2 => self.dt[3],
        };
        self.has(ti, idx)
    }

    /// Whether `tj` can serve as the `a`-child of `ti` (`a` forward).
    fn child_ok(&self, a: Program, ti: usize, tj: usize) -> bool {
        self.isparent(tj, a.converse()) && self.delta(a, ti, tj)
    }
}

/// Per-iteration cumulative snapshots of `(T°, T•)` as sorted index sets.
type Snapshot = (Vec<usize>, Vec<usize>);

/// The enumerated-set backend state driven by the kernel's fixpoint loop.
struct Explicit {
    prep: Prepared,
    tab: Tables,
    un: Vec<bool>,
    mk: Vec<bool>,
    snapshots: Vec<Snapshot>,
}

impl Explicit {
    fn new(lg: &mut Logic, prep: Prepared) -> Explicit {
        let tab = Tables::build(lg, &prep);
        let n = tab.types.len();
        Explicit {
            prep,
            tab,
            un: vec![false; n],
            mk: vec![false; n],
            snapshots: Vec::new(),
        }
    }
}

impl Backend for Explicit {
    /// Index of the root type that passed the final check.
    type Hit = usize;

    fn step(&mut self) -> Result<bool, Exhausted> {
        let tab = &self.tab;
        let n = tab.types.len();
        let mut changed = false;
        // Witnesses come from the previous iteration's sets (Upd(X') in
        // Fig 16), so the iteration count reflects model depth.
        let prev_un = self.un.clone();
        let prev_mk = self.mk.clone();
        // T°: unmarked types, witnesses unmarked.
        for (ti, u) in self.un.iter_mut().enumerate() {
            if *u || tab.has(ti, tab.start_idx) {
                continue;
            }
            let ok = [Program::Down1, Program::Down2].iter().all(|&a| {
                !tab.isparent(ti, a) || (0..n).any(|tj| prev_un[tj] && tab.child_ok(a, ti, tj))
            });
            if ok {
                *u = true;
                changed = true;
            }
        }
        // T•: the three marked cases of Upd.
        for (ti, m) in self.mk.iter_mut().enumerate() {
            if *m {
                continue;
            }
            let w_un = |a: Program| {
                !tab.isparent(ti, a) || (0..n).any(|tj| prev_un[tj] && tab.child_ok(a, ti, tj))
            };
            let w_mk = |a: Program| {
                tab.isparent(ti, a) && (0..n).any(|tj| prev_mk[tj] && tab.child_ok(a, ti, tj))
            };
            let ok = if tab.has(ti, tab.start_idx) {
                // Mark at this node; both subtrees unmarked.
                w_un(Program::Down1) && w_un(Program::Down2)
            } else {
                // Mark strictly below, on exactly one side.
                (w_mk(Program::Down1) && w_un(Program::Down2))
                    || (w_un(Program::Down1) && w_mk(Program::Down2))
            };
            if ok {
                *m = true;
                changed = true;
            }
        }
        self.snapshots.push((
            (0..n).filter(|&i| self.un[i]).collect(),
            (0..n).filter(|&i| self.mk[i]).collect(),
        ));
        Ok(changed)
    }

    fn check(&mut self) -> Option<usize> {
        let tab = &self.tab;
        (0..tab.types.len()).find(|&ti| {
            let in_target = if self.prep.uses_mark {
                self.mk[ti]
            } else {
                self.un[ti]
            };
            in_target
                && !tab.isparent(ti, Program::Up1)
                && !tab.isparent(ti, Program::Up2)
                && tab.psi_status[ti]
        })
    }

    fn reconstruct(&mut self, root: usize) -> Model {
        // Top-down minimal-model reconstruction (§7.2): successors are
        // searched in the earliest snapshot first, minimizing depth.
        let bt = build(
            &self.prep,
            &self.tab,
            &self.snapshots,
            root,
            self.prep.uses_mark,
        );
        Model::from_binary(&bt)
    }

    fn telemetry(&self) -> Telemetry {
        Telemetry::Explicit {
            types: self.tab.types.len(),
        }
    }

    fn observe(&self) -> StepObservation {
        let count = |set: &[bool]| set.iter().filter(|&&b| b).count() as u64;
        StepObservation {
            store_nodes: self.tab.types.len() as u64,
            proved: count(&self.un) + count(&self.mk),
            ..StepObservation::default()
        }
    }
}

/// Decides satisfiability with the explicit backend, unbounded.
///
/// # Panics
///
/// Panics if the lean has more than
/// [`MAX_EXPLICIT_DIAMONDS`](crate::MAX_EXPLICIT_DIAMONDS) diamonds or if
/// `goal` is open. The budget-governed path ([`crate::solve_with`])
/// reports oversized leans as a typed resource exhaustion instead.
pub fn solve_explicit(lg: &mut Logic, goal: Formula) -> Solved {
    let prep = Prepared::new(lg, goal);
    let diamonds = prep.lean.diam_entries().count();
    assert!(
        diamonds <= MAX_EXPLICIT_DIAMONDS,
        "lean too large for the explicit solver: {diamonds} diamonds (max {MAX_EXPLICIT_DIAMONDS})"
    );
    solve_prepared(lg, prep, &Limits::none(), &Recorder::noop())
        .expect("an unbounded explicit run cannot exhaust")
}

/// Runs the explicit backend on an already-preprocessed goal under the
/// caller's limits (the dual cross-check prepares once to bound-check the
/// lean first). The type enumeration is charged against the wall-clock
/// deadline: the driver only gets what construction left over.
pub(crate) fn solve_prepared(
    lg: &mut Logic,
    prep: Prepared,
    limits: &Limits,
    rec: &Recorder,
) -> Result<Solved, SolveError> {
    let started = std::time::Instant::now();
    let (lean_size, closure_size) = (prep.lean.len(), prep.closure.len());
    let backend = {
        let _span = rec.span("enumerate");
        Explicit::new(lg, prep)
    };
    let remaining = limits.after(started.elapsed()).inspect_err(|e| {
        limit_event(rec, e);
    })?;
    run_fixpoint_traced(backend, lean_size, closure_size, &remaining, rec)
}

fn find_child(
    tab: &Tables,
    snapshots: &[Snapshot],
    ti: usize,
    a: Program,
    marked: bool,
) -> Option<usize> {
    for (unset, mkset) in snapshots {
        let set = if marked { mkset } else { unset };
        if let Some(&tj) = set.iter().find(|&&tj| tab.child_ok(a, ti, tj)) {
            return Some(tj);
        }
    }
    None
}

fn build(
    prep: &Prepared,
    tab: &Tables,
    snapshots: &[Snapshot],
    ti: usize,
    need_mark: bool,
) -> BinaryTree {
    let t = &tab.types[ti];
    let label = prep
        .lean
        .prop_entries()
        .find(|&(i, _)| t.get(i))
        .map(|(_, l)| l)
        .expect("every type has exactly one proposition");
    let here_marked = t.get(tab.start_idx);
    debug_assert!(!here_marked || need_mark);
    let below = need_mark && !here_marked;

    let has1 = tab.isparent(ti, Program::Down1);
    let has2 = tab.isparent(ti, Program::Down2);
    // Decide which side carries the mark when it is strictly below. The
    // chosen split must be *jointly* realizable: a marked child on one side
    // and, if the other side exists, an unmarked child there (a marked
    // 1-child may be ∆-compatible even when the type was added through the
    // mark-on-2 case only).
    let (m1, m2) = if !below {
        (false, false)
    } else {
        let via1 = has1
            && find_child(tab, snapshots, ti, Program::Down1, true).is_some()
            && (!has2 || find_child(tab, snapshots, ti, Program::Down2, false).is_some());
        if via1 {
            (true, false)
        } else {
            (false, true)
        }
    };
    let child1 = has1.then(|| {
        let tj = find_child(tab, snapshots, ti, Program::Down1, m1)
            .expect("witness exists by construction");
        build(prep, tab, snapshots, tj, m1)
    });
    let child2 = has2.then(|| {
        let tj = find_child(tab, snapshots, ti, Program::Down2, m2)
            .expect("witness exists by construction");
        build(prep, tab, snapshots, tj, m2)
    });
    BinaryTree::new(label, here_marked, child1, child2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mulogic::ModelChecker;

    fn solve(src: &str) -> Solved {
        let mut lg = Logic::new();
        let goal = lg.parse(src).unwrap();
        solve_explicit(&mut lg, goal)
    }

    #[test]
    fn trivial_sat() {
        let s = solve("a");
        assert!(s.outcome.is_satisfiable());
        let m = s.outcome.model().unwrap();
        assert_eq!(m.roots()[0].label().as_str(), "a");
    }

    #[test]
    fn trivial_unsat() {
        let s = solve("a & ~a");
        assert!(!s.outcome.is_satisfiable());
        let s = solve("F");
        assert!(!s.outcome.is_satisfiable());
    }

    #[test]
    fn child_structure() {
        let s = solve("a & <1>b");
        let m = s.outcome.model().unwrap();
        let t = m.roots()[0].clone();
        assert_eq!(t.label().as_str(), "a");
        assert_eq!(t.children()[0].label().as_str(), "b");
    }

    #[test]
    fn model_checks_out() {
        // Every satisfiable verdict must produce a model that the
        // independent model checker accepts at the root.
        let cases = [
            "a & <1>(b & <2>c)",
            "a & ~<1>T",
            "let_mu X = b | <2>X in <1>X",
            "a & <1>(b & <-1>a)",
        ];
        for src in cases {
            let mut lg = Logic::new();
            let goal = lg.parse(src).unwrap();
            let s = solve_explicit(&mut lg, goal);
            let m = s.outcome.model().unwrap_or_else(|| panic!("{src} unsat"));
            let tree = m.tree();
            let mc = ModelChecker::new(&tree);
            let sat = mc.eval(&lg, goal);
            assert!(!sat.is_empty(), "model of {src} fails model check: {m}");
        }
    }

    #[test]
    fn marked_models_have_one_mark() {
        let s = solve("a & <1>(b & s)");
        let m = s.outcome.model().unwrap();
        assert_eq!(m.tree().mark_count(), 1, "{m}");
        let mc = ModelChecker::new(&m.tree());
        let mut lg = Logic::new();
        let goal = lg.parse("a & <1>(b & s)").unwrap();
        assert!(!mc.eval(&lg, goal).is_empty());
    }

    #[test]
    fn unsat_with_marks() {
        // Two distinct marked nodes cannot exist.
        let s = solve("s & <1>s");
        assert!(!s.outcome.is_satisfiable());
        // A mark must exist somewhere if required positively.
        let s = solve("s & ~s");
        assert!(!s.outcome.is_satisfiable());
    }

    #[test]
    fn backward_modalities() {
        // "b, being a first child of an a" — root must be a.
        let s = solve("b & <-1>a");
        let m = s.outcome.model().unwrap();
        let t = m.tree();
        assert_eq!(t.label().as_str(), "a");
        assert_eq!(t.children()[0].label().as_str(), "b");
    }

    #[test]
    fn other_label_used_when_needed() {
        // ¬a at the root forces the fresh σx label.
        let s = solve("~a & ~<1>T & ~<2>T");
        let m = s.outcome.model().unwrap();
        assert_ne!(m.roots()[0].label().as_str(), "a");
    }

    #[test]
    fn stats_populated() {
        let s = solve("a & <1>b");
        assert!(s.stats.lean_size >= 7);
        assert!(s.stats.iterations >= 2);
        assert!(s.stats.telemetry.explicit_types().unwrap() > 0);
        assert_eq!(s.stats.telemetry.backend_name(), "explicit");
    }

    #[test]
    fn mark_on_sibling_side_reconstruction() {
        // Regression (found by proptest): ⟨1̄⟩⟨2⟩s — "my parent has a
        // marked next sibling". The mark lives on the 2-side of the root
        // row; a ∆-compatible marked 1-child may exist spuriously and the
        // reconstruction must not commit to it when the 2-side split is the
        // realizable one.
        let mut lg = Logic::new();
        let goal = lg.parse("<-1><2>s").unwrap();
        let s = solve_explicit(&mut lg, goal);
        let m = s.outcome.model().expect("satisfiable");
        let marks: usize = m.roots().iter().map(|t| t.mark_count()).sum();
        assert_eq!(marks, 1, "{m}");
    }

    #[test]
    fn fixpoint_queries() {
        // descendant-style: some node below is d (via plunge this is just d
        // reachable): a with first child chain to d.
        let s = solve("a & <1>(let_mu X = d | <1>X | <2>X in X)");
        let m = s.outcome.model().unwrap();
        let xml = m.xml();
        assert!(xml.contains("<d"), "{xml}");
    }
}

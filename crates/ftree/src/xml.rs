//! Minimal XML rendering and parsing for trees.
//!
//! The fragment supported is exactly what the system needs: elements with
//! name-only structure plus the optional start-mark attribute `s="1"`.
//! Counter-example trees produced by the solver are rendered through
//! [`Tree::to_xml`], and test fixtures are parsed with [`Tree::parse_xml`].

use std::error::Error;
use std::fmt;

use crate::{Label, Tree};

/// Error returned by [`Tree::parse_xml`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseXmlError {
    msg: String,
    at: usize,
}

impl ParseXmlError {
    fn new(msg: impl Into<String>, at: usize) -> Self {
        ParseXmlError {
            msg: msg.into(),
            at,
        }
    }

    /// Byte offset of the error in the input.
    pub fn offset(&self) -> usize {
        self.at
    }
}

impl fmt::Display for ParseXmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed xml at byte {}: {}", self.at, self.msg)
    }
}

impl Error for ParseXmlError {}

pub(crate) fn write_tree(out: &mut String, t: &Tree) {
    out.push('<');
    out.push_str(t.label().as_str());
    if t.is_marked() {
        out.push_str(" s=\"1\"");
    }
    if t.children().is_empty() {
        out.push_str("/>");
    } else {
        out.push('>');
        for c in t.children() {
            write_tree(out, c);
        }
        out.push_str("</");
        out.push_str(t.label().as_str());
        out.push('>');
    }
}

pub(crate) fn write_tree_pretty(out: &mut String, t: &Tree, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push('<');
    out.push_str(t.label().as_str());
    if t.is_marked() {
        out.push_str(" s=\"1\"");
    }
    if t.children().is_empty() {
        out.push_str("/>");
    } else {
        out.push('>');
        for c in t.children() {
            out.push('\n');
            write_tree_pretty(out, c, depth + 1);
        }
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str("</");
        out.push_str(t.label().as_str());
        out.push('>');
    }
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: impl Into<String>) -> ParseXmlError {
        ParseXmlError::new(msg, self.pos)
    }

    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ParseXmlError> {
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {c:?}")))
        }
    }

    fn name(&mut self) -> Result<&'a str, ParseXmlError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || "-_.:".contains(c)) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        Ok(&self.input[start..self.pos])
    }

    fn element(&mut self) -> Result<Tree, ParseXmlError> {
        self.expect('<')?;
        let name = self.name()?;
        self.skip_ws();
        let mut marked = false;
        // Attributes: only `s` is meaningful; others are rejected.
        while matches!(self.peek(), Some(c) if c.is_alphabetic()) {
            let attr = self.name()?;
            self.skip_ws();
            self.expect('=')?;
            self.skip_ws();
            let quote = self.bump().ok_or_else(|| self.error("expected a quote"))?;
            if quote != '"' && quote != '\'' {
                return Err(self.error("expected a quoted attribute value"));
            }
            let vstart = self.pos;
            while self.peek().is_some_and(|c| c != quote) {
                self.bump();
            }
            let value = &self.input[vstart..self.pos];
            self.expect(quote)?;
            self.skip_ws();
            match attr {
                "s" => marked = value == "1" || value == "true",
                other => return Err(self.error(format!("unsupported attribute {other:?}"))),
            }
        }
        match self.peek() {
            Some('/') => {
                self.bump();
                self.expect('>')?;
                Ok(make(name, marked, Vec::new()))
            }
            Some('>') => {
                self.bump();
                let mut children = Vec::new();
                loop {
                    self.skip_ws();
                    if self.input[self.pos..].starts_with("</") {
                        break;
                    }
                    children.push(self.element()?);
                }
                self.expect('<')?;
                self.expect('/')?;
                let close = self.name()?;
                if close != name {
                    return Err(self.error(format!(
                        "mismatched closing tag: expected </{name}>, found </{close}>"
                    )));
                }
                self.skip_ws();
                self.expect('>')?;
                Ok(make(name, marked, children))
            }
            _ => Err(self.error("expected '>' or '/>'")),
        }
    }
}

fn make(name: &str, marked: bool, children: Vec<Tree>) -> Tree {
    if marked {
        Tree::marked_node(Label::new(name), children)
    } else {
        Tree::node(Label::new(name), children)
    }
}

pub(crate) fn parse_tree(input: &str) -> Result<Tree, ParseXmlError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let t = p.element()?;
    p.skip_ws();
    if p.pos != input.len() {
        return Err(p.error("trailing content after root element"));
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let src = "<a><b s=\"1\"/><c><d/></c></a>";
        let t = parse_tree(src).unwrap();
        assert_eq!(t.to_xml(), src);
        assert_eq!(t.mark_count(), 1);
    }

    #[test]
    fn pretty_roundtrips_and_indents() {
        let t = parse_tree("<a><b s=\"1\"/><c><d/></c></a>").unwrap();
        let pretty = t.to_xml_pretty();
        assert_eq!(pretty, "<a>\n  <b s=\"1\"/>\n  <c>\n    <d/>\n  </c>\n</a>");
        // The pretty form parses back to the same tree.
        assert_eq!(parse_tree(&pretty).unwrap(), t);
        // A leaf document stays a one-liner.
        let leaf = parse_tree("<a/>").unwrap();
        assert_eq!(leaf.to_xml_pretty(), "<a/>");
    }

    #[test]
    fn whitespace_tolerated() {
        let t = parse_tree("  <a >\n <b/> </a>  ").unwrap();
        assert_eq!(t.to_xml(), "<a><b/></a>");
    }

    #[test]
    fn errors() {
        assert!(parse_tree("<a>").is_err());
        assert!(parse_tree("<a></b>").is_err());
        assert!(parse_tree("<a/><b/>").is_err());
        assert!(parse_tree("<a x=\"2\"/>").is_err());
        assert!(parse_tree("").is_err());
    }

    #[test]
    fn error_reports_offset() {
        let err = parse_tree("<a></b>").unwrap_err();
        assert!(err.offset() > 0);
        assert!(err.to_string().contains("mismatched"));
    }
}

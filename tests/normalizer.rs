//! The query normalizer checked by the decision procedure itself: for each
//! rewrite example, `e ≡ normalize(e)` is *proved* by two containment
//! checks of the satisfiability solver — the use-case the paper's
//! introduction motivates (logic-verified query optimization).

use xsat::analyzer::Analyzer;
use xsat::xpath::{normalize, parse};

#[test]
fn solver_proves_rewrites_equivalent() {
    let queries = [
        "a/self::*//b[c][d]",
        "b/..",
        "a | a",
        "a[not(not(b))]",
        ".//b",
        "a//b[c]/self::*",
        "child::c/preceding-sibling::a[child::b]/self::*",
    ];
    let mut az = Analyzer::new();
    for q in queries {
        let e = parse(q).unwrap();
        let n = normalize(&e);
        let (fwd, bwd) = az.equivalent(&e, None, &n, None).unwrap();
        assert!(
            fwd.holds && bwd.holds,
            "{q} not equivalent to its normal form {n}: fwd={} bwd={}",
            fwd.holds,
            bwd.holds
        );
    }
}

#[test]
fn solver_separates_non_equivalent_queries() {
    // Sanity: the equivalence check is not trivially true.
    let mut az = Analyzer::new();
    let e1 = parse("a//b").unwrap();
    let e2 = parse("a/b").unwrap();
    let (fwd, bwd) = az.equivalent(&e1, None, &e2, None).unwrap();
    assert!(!fwd.holds && bwd.holds); // a/b ⊆ a//b but not conversely
}

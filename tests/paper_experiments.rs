//! End-to-end reproduction tests for the paper's evaluation (§8, Table 2,
//! rows without the heavy XHTML instances — those run in the `experiments`
//! binary and the bench harness).
//!
//! Each verdict is cross-checked: counter-examples / witnesses are
//! re-evaluated with the denotational XPath interpreter and, where a DTD is
//! involved, with the derivative-based validator.

use xsat::analyzer::{paper, Analyzer};
use xsat::treetypes::smil_1_0;
use xsat::xpath::eval_on_tree;

/// Table 2 row 1: `e1 ⊆ e2` holds, `e2 ⊆ e1` does not. This is the pair
/// from Miklau & Suciu on which the tree-pattern homomorphism technique is
/// incomplete.
#[test]
fn row1_e1_contained_in_e2() {
    let e1 = paper::query(1);
    let e2 = paper::query(2);
    let mut az = Analyzer::new();
    let fwd = az.contains(&e1, None, &e2, None).unwrap();
    assert!(fwd.holds, "paper: e1 ⊆ e2");
    let bwd = az.contains(&e2, None, &e1, None).unwrap();
    assert!(!bwd.holds, "paper: e2 ⊄ e1");
    // The counter-example tree really separates the queries.
    let m = bwd.counter_example.expect("separating tree");
    let tree = m.tree();
    let s1 = eval_on_tree(&e1, &tree);
    let s2 = eval_on_tree(&e2, &tree);
    assert!(s2.iter().any(|f| !s1.contains(f)), "{}", m.xml());
}

/// Table 2 row 2: e4 and e3 are equivalent.
#[test]
fn row2_e4_equivalent_e3() {
    let e3 = paper::query(3);
    let e4 = paper::query(4);
    let mut az = Analyzer::new();
    let (fwd, bwd) = az.equivalent(&e4, None, &e3, None).unwrap();
    assert!(fwd.holds && bwd.holds);
}

/// Table 2 row 3: the paper reports `e6 ⊆ e5`; under the standard XPath
/// reading of e5/e6 the containment does *not* hold, and the counter-example
/// is confirmed by the (independent) denotational interpreter. `e5 ⊄ e6`
/// agrees with the paper. See EXPERIMENTS.md for the discussion.
#[test]
fn row3_e6_e5_divergence_is_real() {
    let e5 = paper::query(5);
    let e6 = paper::query(6);
    let mut az = Analyzer::new();
    let fwd = az.contains(&e6, None, &e5, None).unwrap();
    assert!(!fwd.holds, "we measure e6 ⊄ e5 (paper reports ⊆)");
    let m = fwd.counter_example.expect("counter-example");
    let tree = m.tree();
    let s5 = eval_on_tree(&e5, &tree);
    let s6 = eval_on_tree(&e6, &tree);
    assert!(
        s6.iter().any(|f| !s5.contains(f)),
        "interpreter must confirm the separation on {}",
        m.xml()
    );
    let bwd = az.contains(&e5, None, &e6, None).unwrap();
    assert!(!bwd.holds, "paper: e5 ⊄ e6");
}

/// Table 2 row 4: e7 is satisfiable under SMIL 1.0 and the witness is a
/// valid SMIL document on which e7 selects a node.
#[test]
fn row4_e7_satisfiable_under_smil() {
    let dtd = smil_1_0();
    let e7 = paper::query(7);
    let mut az = Analyzer::new();
    let v = az.is_satisfiable(&e7, Some(&dtd)).unwrap();
    assert!(v.holds);
    let m = v.counter_example.expect("witness");
    let tree = m.tree();
    assert!(
        dtd.validates(&tree.clear_marks()),
        "witness must be SMIL-valid: {}",
        m.xml()
    );
    let selected = eval_on_tree(&e7, &tree);
    assert!(!selected.is_empty(), "e7 must select a node in {}", m.xml());
}

/// Fig 18: the worked containment example, counter-example shape included.
#[test]
fn fig18_counter_example() {
    let e1 = xsat::xpath::parse("child::c/preceding-sibling::a[child::b]").unwrap();
    let e2 = xsat::xpath::parse("child::c[child::b]").unwrap();
    let mut az = Analyzer::new();
    let v = az.contains(&e1, None, &e2, None).unwrap();
    assert!(!v.holds);
    let m = v.counter_example.unwrap();
    let tree = m.tree();
    // Exactly the paper's shape: the context has an a (with b child)
    // followed by a c.
    let s1 = eval_on_tree(&e1, &tree);
    let s2 = eval_on_tree(&e2, &tree);
    assert!(!s1.is_empty() && s2.is_empty());
    // Minimal: four nodes (context, a, b, c).
    assert!(m.size() <= 4, "expected the minimal model, got {}", m.xml());
}

//! Bit-vector ψ-types for the explicit solver.

use std::fmt;

use mulogic::{Lean, Program};

/// A ψ-type as a bit vector over the lean (one bit per [`mulogic::LeanAtom`]).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeBits {
    words: Box<[u64]>,
    len: usize,
}

impl TypeBits {
    /// The all-zero vector over a lean of `len` atoms.
    pub fn empty(len: usize) -> Self {
        TypeBits {
            words: vec![0; len.div_ceil(64)].into_boxed_slice(),
            len,
        }
    }

    /// Number of atoms (bits).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets bit `i`.
    pub fn set(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len);
        if v {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// The bits as a `Vec<bool>` (for the status evaluator).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Builds from a `bool` slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut t = TypeBits::empty(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            t.set(i, b);
        }
        t
    }
}

impl fmt::Debug for TypeBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TypeBits[")?;
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        write!(f, "]")
    }
}

/// Enumerates every well-formed ψ-type of a lean (explicit solver only).
///
/// A ψ-type satisfies (§6.1):
/// * modal consistency: `⟨a⟩ϕ ∈ t ⇒ ⟨a⟩⊤ ∈ t`;
/// * not both `⟨1̄⟩⊤` and `⟨2̄⟩⊤` (a node is not two kinds of child);
/// * exactly one atomic proposition;
/// * the start proposition is free.
///
/// The number of types is exponential in the number of `⟨a⟩ϕ` entries; the
/// explicit solver is a reference implementation for small formulas. The
/// governed entry points ([`solve_with`](crate::solve_with)) refuse leans
/// beyond [`Limits::max_lean_diamonds`](crate::Limits::max_lean_diamonds)
/// — default [`MAX_EXPLICIT_DIAMONDS`] — before this enumerator runs; the
/// enumerator itself only guards the representation limit.
pub struct TypeEnumerator<'l> {
    lean: &'l Lean,
    diam_positions: Vec<(usize, Program)>,
    prop_positions: Vec<usize>,
}

/// Default cap on `⟨a⟩ϕ` lean entries accepted by the explicit enumeration
/// (the value of `Limits::max_lean_diamonds` under `Limits::default()`).
pub const MAX_EXPLICIT_DIAMONDS: usize = 16;

/// Absolute representation limit of the enumeration's `u32` masks. The
/// governed dispatch path clamps `Limits::max_lean_diamonds` to this, so
/// a wire request can never push an oversized lean past the feasibility
/// check into the enumerator's assert; raising the cap past
/// [`MAX_EXPLICIT_DIAMONDS`] at all is already a deliberate act of
/// spending exponential time.
pub(crate) const ENUMERATION_HARD_CAP: usize = 26;

impl<'l> TypeEnumerator<'l> {
    /// Prepares enumeration over the given lean.
    ///
    /// # Panics
    ///
    /// Panics if the lean has more than 26 diamond entries (the `u32`
    /// enumeration-mask limit). Budget-governed callers should bound the
    /// lean with `Limits::max_lean_diamonds` long before this fires.
    pub fn new(lean: &'l Lean) -> Self {
        let diam_positions: Vec<(usize, Program)> =
            lean.diam_entries().map(|(i, p, _)| (i, p)).collect();
        assert!(
            diam_positions.len() <= ENUMERATION_HARD_CAP,
            "lean too large for the explicit solver: {} diamonds (hard cap {})",
            diam_positions.len(),
            ENUMERATION_HARD_CAP
        );
        let prop_positions = lean.prop_entries().map(|(i, _)| i).collect();
        TypeEnumerator {
            lean,
            diam_positions,
            prop_positions,
        }
    }

    /// All well-formed types, materialized.
    pub fn all(&self) -> Vec<TypeBits> {
        let n = self.lean.len();
        let d = self.diam_positions.len();
        let mut out = Vec::new();
        let dt: Vec<usize> = Program::ALL
            .iter()
            .map(|&p| self.lean.diam_true_index(p))
            .collect();
        for mask in 0u32..(1 << d) {
            // Which programs are forced to have ⟨a⟩⊤ by modal consistency.
            let mut forced = [false; 4];
            for (k, &(_, p)) in self.diam_positions.iter().enumerate() {
                if mask >> k & 1 == 1 {
                    let pi = Program::ALL.iter().position(|&q| q == p).expect("program");
                    forced[pi] = true;
                }
            }
            // Free ⟨a⟩⊤ bits: those not forced may be 0 or 1.
            let free: Vec<usize> = (0..4).filter(|&i| !forced[i]).collect();
            for free_mask in 0u32..(1 << free.len()) {
                let mut has = forced;
                for (j, &fi) in free.iter().enumerate() {
                    has[fi] = free_mask >> j & 1 == 1;
                }
                // A node cannot be both a first child and a second child.
                let up1 = Program::ALL
                    .iter()
                    .position(|&q| q == Program::Up1)
                    .expect("program");
                let up2 = Program::ALL
                    .iter()
                    .position(|&q| q == Program::Up2)
                    .expect("program");
                if has[up1] && has[up2] {
                    continue;
                }
                for &prop_i in &self.prop_positions {
                    for s in [false, true] {
                        let mut t = TypeBits::empty(n);
                        for (k, &(pos, _)) in self.diam_positions.iter().enumerate() {
                            t.set(pos, mask >> k & 1 == 1);
                        }
                        for (pi, &dti) in dt.iter().enumerate() {
                            t.set(dti, has[pi]);
                        }
                        t.set(prop_i, true);
                        t.set(self.lean.start_index(), s);
                        out.push(t);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mulogic::{Closure, Logic};

    #[test]
    fn bit_ops() {
        let mut t = TypeBits::empty(130);
        t.set(0, true);
        t.set(64, true);
        t.set(129, true);
        assert!(t.get(0) && t.get(64) && t.get(129));
        assert!(!t.get(1));
        t.set(64, false);
        assert!(!t.get(64));
        let b = t.to_bools();
        assert_eq!(TypeBits::from_bools(&b), t);
    }

    #[test]
    fn enumeration_respects_constraints() {
        let mut lg = Logic::new();
        let f = lg.parse("a & <1>b").unwrap();
        let cl = Closure::compute(&mut lg, f);
        let lean = Lean::compute(&mut lg, &cl);
        let en = TypeEnumerator::new(&lean);
        let all = en.all();
        assert!(!all.is_empty());
        let props: Vec<usize> = lean.prop_entries().map(|(i, _)| i).collect();
        for t in &all {
            // Exactly one proposition.
            assert_eq!(props.iter().filter(|&&i| t.get(i)).count(), 1);
            // Modal consistency.
            for (i, p, _) in lean.diam_entries() {
                if t.get(i) {
                    assert!(t.get(lean.diam_true_index(p)));
                }
            }
            // Not both kinds of child.
            assert!(
                !(t.get(lean.diam_true_index(Program::Up1))
                    && t.get(lean.diam_true_index(Program::Up2)))
            );
        }
        // All types distinct.
        let set: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), all.len());
    }
}
